"""Cycle-level Light NUCA model.

:class:`LightNUCA` is the paper's contribution: the L1 (r-tile) surrounded
by levels of one-cycle 8 KB tiles connected by the Search, Transport and
Replacement networks.  The class implements the
:class:`~repro.sim.memsys.MemorySystem` interface so the out-of-order core
can drive it exactly like the conventional hierarchy, and it delegates
global misses, write-through traffic, and corner-tile evictions to an
arbitrary *backside* memory system (a conventional L3 or a D-NUCA).

Cycle semantics
===============

The model follows Section II/III of the paper:

* a request that misses in the r-tile launches a *search wave*; the wave
  probes one level per cycle (tile access plus one-hop routing fit in a
  single cycle), and tiles that hit stop propagating while the others fan
  the miss out to their search children;
* a hit extracts the block from the tile (content exclusion) and injects a
  headerless transport message that hops towards the r-tile through the
  2-D mesh, choosing randomly among the On output links each cycle;
* when the wave falls off the last level without a hit, the segmented miss
  line collects the global miss one cycle later and the request is
  forwarded to the backside;
* every fill into the r-tile may evict a victim, which "dominoes" outwards
  over the Replacement network during search-idle cycles; only the two
  upper-corner tiles evict to the backside.

Under the event-driven kernel (see :mod:`repro.sim.memsys`), :meth:`tick`
is only guaranteed to run on the cycles exposed through
:meth:`LightNUCA.next_event_cycle`: search-wave steps and backside-fill
arrivals carry explicit fire cycles, while the per-cycle queues (transport
and replacement sweeps, eviction injection, root-buffer deliveries) pin
the next event to the following cycle whenever they are non-empty, so no
sweep cycle is ever skipped.  Backside drain traffic — r-tile write-buffer
drains and corner-eviction pops — is *deferred* under the module's
deferred-drain exemption: it requests no wakeups, and
:meth:`LightNUCA._pump_drains` burst-replays the missed span at the exact
dense-mode cycles before anything can observe the fabric.
"""

from __future__ import annotations

import heapq
import itertools
import random
from collections import deque
from functools import partial
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.cache.cache import TimedCache
from repro.cache.request import AccessType, MemoryRequest
from repro.common.errors import SimulationError
from repro.core.config import LNUCAConfig
from repro.core.geometry import ROOT, Coordinate, LNUCAGeometry
from repro.core.networks import ReplacementNetwork, SearchNetwork, TransportNetwork
from repro.core.tile import Tile
from repro.noc.buffer import FlowControlBuffer
from repro.noc.message import Message, MessageKind
from repro.sim.memsys import FINALIZE_GUARD_CYCLES, MemorySystem

_wave_ids = itertools.count()


@dataclass
class SearchWave:
    """One miss request propagating outwards through the Search network."""

    block_addr: int
    frontier: List[Coordinate]
    next_cycle: int
    launched_cycle: int
    hit: bool = False
    hit_level: Optional[int] = None
    is_write: bool = False
    #: Index into the controller's precomputed per-level frontier tables
    #: while the wave is still on the canonical (no hit yet) expansion;
    #: ``None`` once a hit pruned the fan-out and the frontier is custom.
    level_index: Optional[int] = 0
    wave_id: int = field(default_factory=lambda: next(_wave_ids))


class _LNUCASpanView:
    """Analyzable steady-state window view of a :class:`LightNUCA`.

    Handed out by :meth:`LightNUCA.span_window` when the fabric is quiet;
    see :meth:`repro.sim.memsys.MemorySystem.span_window` for the contract.
    Both loads and stores require r-tile residency (``store_needs_residency``
    and ``store_capacity is None``): a resident store just dirties the
    r-tile copy — it reaches the backside only when it dominoes off an
    upper-corner tile, far outside any analyzable window.
    """

    __slots__ = ("lnuca", "rtile", "cfg_tag", "load_latency", "ports",
                 "store_capacity", "store_needs_residency", "front_name")

    def __init__(self, lnuca: "LightNUCA") -> None:
        rtile = lnuca.rtile
        self.lnuca = lnuca
        self.rtile = rtile
        self.load_latency = lnuca._rtile_completion
        self.ports = rtile.config.ports
        self.store_capacity = None
        self.store_needs_residency = True
        self.front_name = rtile.name
        self.cfg_tag = (
            "lnuca", lnuca.name, rtile.name, rtile.config.size_bytes,
            rtile.config.associativity, rtile.config.block_size,
            self.load_latency, self.ports,
        )

    def entry_sig(self, cycle: int) -> tuple:
        # A quiet fabric with free ports and an empty write buffer carries
        # no timing state a window schedule could depend on.
        return ()

    def block_addr(self, addr: int) -> int:
        return self.rtile.block_addr(addr)

    def resident(self, addr: int) -> bool:
        return self.rtile.array.contains(addr)

    def resident_all(self, addrs) -> bool:
        return self.rtile.array.contains_all(addrs)

    def mshr_clear(self, addrs) -> bool:
        # span_window already requires the r-tile MSHR file to be idle (the
        # fabric resolves misses through search waves, which close windows
        # wholesale), so per-address screening has nothing left to exclude.
        return True

    def apply_span_events(self, base: int, events) -> None:
        """Replay validated ``(rel, is_store, addr)`` hits through the r-tile.

        No per-event pump: hit-only windows enqueue no corner evictions and
        no r-tile write-buffer entries, so the dense path would find both
        drain queues empty at every one of these cycles.
        """
        rtile = self.rtile
        reserve = rtile.reserve_port
        lookup = rtile.lookup
        counters = self.lnuca.stats._counters
        for rel, is_store, addr in events:
            start = reserve(base + rel)
            if is_store:
                block = lookup(addr, start, True)
                block.dirty = True
                counters["writes"] += 1.0
            else:
                lookup(addr, start, False)
                counters["reads"] += 1.0


class LightNUCA(MemorySystem):
    """An L-NUCA cache in front of an arbitrary backside memory system.

    Args:
        config: the L-NUCA design point (levels, tile geometry, buffers...).
        backside: memory system servicing global misses and write-through
            traffic (a :class:`~repro.cache.hierarchy.ConventionalHierarchy`
            holding the L3, or a D-NUCA system).
        name: label for statistics; defaults to the paper-style LNx name.
    """

    def __init__(
        self,
        config: LNUCAConfig,
        backside: MemorySystem,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name or config.name)
        self.config = config
        self.backside = backside
        self.geometry = LNUCAGeometry(config.levels)
        self.rng = random.Random(config.seed)

        self.rtile = TimedCache(config.rtile)
        #: Bound once: the deferred-drain guards probe this queue on every
        #: can_accept/issue/tick, so the attribute chain is pre-resolved.
        self._rtile_wb = self.rtile.write_buffer
        #: Scalars bound once for the per-load hot path (property + config
        #: attribute chases per access were measurable).
        self._rtile_completion = self.rtile.completion_cycles
        self._rtile_miss_known = max(1, self.rtile.completion_cycles - 1)
        self.tiles: Dict[Coordinate, Tile] = {
            coord: Tile(coord, config.tile, config.buffer_depth)
            for coord in self.geometry.tiles
        }
        #: Search content maps: where every block in the tile fabric lives
        #: (content exclusion guarantees at most one holder), split into
        #: tile-array residents and blocks in transit through Replacement
        #: (U) input buffers.  A search wave locates its block with two
        #: dict probes instead of an array + U-buffer probe per frontier
        #: tile; the tile map is kept current by the arrays' ``on_change``
        #: hook, so every mutation path (timed model, functional prewarm,
        #: tests poking arrays directly) is covered.
        self._tile_contents: Dict[int, Coordinate] = {}
        self._u_contents: Dict[int, Coordinate] = {}
        for coord, tile in self.tiles.items():
            tile.array.on_change = partial(self._tile_content_change, coord)

        self.search_net = SearchNetwork(self.geometry)
        self.transport_net = TransportNetwork(self.geometry, config.routing_policy, self.rng)
        self.replacement_net = ReplacementNetwork(self.geometry, config.routing_policy, self.rng)
        self.root_d_buffers: Dict[Coordinate, FlowControlBuffer] = {}
        self.transport_net.wire(self.tiles, self.root_d_buffers)
        self.replacement_net.wire(self.tiles)

        # In-flight state.
        self._waves: List[SearchWave] = []
        self._last_wave_cycle = -1
        self._backside_fills: List[Tuple[int, int, int, str]] = []  # heap
        self._fill_seq = itertools.count()
        self._rtile_evictions: Deque[Tuple[int, bool]] = deque()
        #: Corner-tile victims waiting to leave for the backside, stamped
        #: with their arrival cycle.  Dense mode pops one per cycle; the
        #: event kernel defers the pops and replays them bit-identically
        #: (see :meth:`_pump_drains`), so the last-pop cycle is tracked to
        #: reproduce the one-per-cycle cadence across deferred spans.
        self._corner_evictions: Deque[Tuple[int, bool, int]] = deque()
        self._corner_last_pop = -1
        self._transport_active: set = set()
        self._replacement_active: set = set()
        #: Lazily built window view handed out by :meth:`span_window`.
        self._span_view: Optional[_LNUCASpanView] = None

        # Tiles ordered by distance for the two buffered-network sweeps.
        self._tiles_by_distance = sorted(
            self.geometry.tiles, key=self.geometry.manhattan_to_root
        )
        #: Distance table bound once: the per-tick transport/replacement
        #: sweeps sort their (small) active sets by it, and a dict probe
        #: beats a method call as the sort key.
        self._distance_of = {
            coord: self.geometry.manhattan_to_root(coord)
            for coord in self.geometry.tiles
        }
        #: Canonical search frontiers: the frontier a wave that has not hit
        #: yet presents at each step is a pure function of the geometry
        #: (every missing tile fans out to all its children), so the
        #: per-step tile lists — and the sets used for the O(1) hit
        #: membership test — are precomputed once.  Only a wave whose
        #: fan-out was pruned by a hit falls back to a custom list.
        frontiers: List[Tuple[tuple, frozenset]] = []
        frontier = tuple(self.search_net.children_of(ROOT))
        while frontier:
            frontiers.append((frontier, frozenset(frontier)))
            nxt: List[Coordinate] = []
            for coord in frontier:
                nxt.extend(self.search_net.children_of(coord))
            frontier = tuple(nxt)
        self._level_frontiers = frontiers
        #: Prefix sums of the canonical frontier widths (``prefix[i]`` =
        #: total tiles in levels ``0..i-1``) so a burst-replayed miss run
        #: can account its tag probes and link traversals in O(1).
        prefix = [0.0]
        for level_frontier, _ in frontiers:
            prefix.append(prefix[-1] + len(level_frontier))
        self._frontier_len_prefix = prefix
        #: Canonical level index of each fabric tile (the step at which
        #: the no-hit expansion reaches it).
        self._frontier_index_of: Dict[Coordinate, int] = {}
        for index, (level_frontier, _) in enumerate(frontiers):
            for coord in level_frontier:
                self._frontier_index_of.setdefault(coord, index)
        #: Steps a custom (post-hit) frontier rooted at a tile needs until
        #: its fan-out dies: 0 at the leaves, 1 + max over children above.
        depth_below: Dict[Coordinate, int] = {}
        for level_frontier, _ in reversed(frontiers):
            for coord in level_frontier:
                children = self.search_net.children_of(coord)
                depth_below[coord] = (
                    1 + max(depth_below[child] for child in children)
                    if children else 0
                )
        self._depth_below = depth_below
        #: Aggregate tag-probe counter for search misses.  Dense probing
        #: charged each probed tile's ``search_lookups`` individually; the
        #: per-tile attribution is observable only as the fleet-wide sum
        #: (``tiles.search_lookups`` in :meth:`activity`), so miss probes
        #: are accounted here in bulk and folded into that sum.  Hits keep
        #: their exact per-tile accounting (the hit tile is really probed).
        self._search_lookups_bulk = 0.0
        # The delivery order over the root D buffers is fixed once the
        # networks are wired; precompute it so the hot delivery loop does
        # not re-sort the dict keys every cycle.
        self._root_d_items = [
            (source, self.root_d_buffers[source])
            for source in sorted(self.root_d_buffers)
        ]

    def _tile_content_change(self, coord: Coordinate, block_addr: int, present: bool) -> None:
        """Array membership observer keeping the search content map exact.

        A duplicate insert under a different coordinate means two tiles
        hold the same block — the content-exclusion violation the per-tile
        probe loop used to detect at search time — so it raises the same
        way instead of silently tracking one copy.
        """
        contents = self._tile_contents
        if present:
            prior = contents.get(block_addr)
            if prior is not None and prior != coord:
                raise SimulationError(
                    f"block 0x{block_addr:x} filled into two tiles ({prior} and "
                    f"{coord}): content exclusion violated"
                )
            contents[block_addr] = coord
        elif contents.get(block_addr) == coord:
            del contents[block_addr]

    # ------------------------------------------------------------------ interface
    def can_accept(self, cycle: int, access: AccessType) -> bool:
        if self._corner_evictions or self._rtile_wb._queue:
            self._pump_drains(cycle)
        if access is AccessType.STORE:
            return self.rtile.port_available(cycle) and self.rtile.write_buffer.can_accept()
        return self.rtile.port_available(cycle) and not self.rtile.mshr.is_full()

    def issue(self, addr: int, access: AccessType, cycle: int) -> MemoryRequest:
        if self._corner_evictions or self._rtile_wb._queue:
            self._pump_drains(cycle)
        request = MemoryRequest(addr=addr, access=access, issue_cycle=cycle)
        if access is AccessType.STORE:
            self._issue_store(request, cycle)
            self.stats._counters["writes"] += 1.0
        else:
            self._issue_load(request, cycle)
            self.stats._counters["reads"] += 1.0
        return request

    def busy(self) -> bool:
        return bool(
            self._waves
            or self._backside_fills
            or self._rtile_evictions
            or self._corner_evictions
            or self._transport_active
            or self._replacement_active
            or not self.rtile.write_buffer.is_empty()
            or self._root_buffers_busy()
            or self.backside.busy()
        )

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Earliest future cycle at which :meth:`tick` can make progress.

        Per-cycle queues (transport/replacement sweeps, eviction injection,
        root-buffer deliveries) fire every cycle while non-empty, so they
        pin the next event to ``cycle + 1``.  Write-buffer drains and
        corner-eviction pops request no wakeups at all: they are *deferred*
        and replayed at their exact dense-mode cycles by
        :meth:`_pump_drains` before anything can observe the fabric, so a
        hierarchy with only backside drain traffic left reports ``None``
        and the scheduler skips it entirely.

        Search waves are fast-forwarded analytically: with the rest of the
        fabric quiet the content maps are frozen (nothing can *add* a
        block before the next tick — fills need replacement or delivery
        activity, which forces the per-cycle branch — and removals only
        delay a hit), so a wave's next observable action — the probe that
        hits, or the terminal step that declares the global miss — sits at
        a precomputable *decisive* cycle.  The per-level steps in between
        touch nothing but commutative probe/broadcast counters and the
        wave's own position, so the scheduler leaps straight to the
        decisive cycle and :meth:`tick` burst-replays the skipped levels
        (see :meth:`_catch_up_waves`), exactly the deferred-drain
        discipline applied to the search network.
        """
        best: Optional[int] = None
        if (
            self._rtile_evictions
            or self._transport_active
            or self._replacement_active
            or self._root_buffers_busy()
        ):
            best = cycle + 1
        else:
            if self._waves:
                when = None
                for wave in self._waves:
                    decisive = self._wave_decisive_cycle(wave)
                    if when is None or decisive < when:
                        when = decisive
                if when <= cycle:
                    when = cycle + 1
                if best is None or when < best:
                    best = when
            if self._backside_fills:
                when = max(cycle + 1, self._backside_fills[0][0])
                if best is None or when < best:
                    best = when
        backside = self.backside.next_event_cycle(cycle)
        if backside is not None and (best is None or backside < best):
            best = backside
        return best

    def _fine_grained_busy(self) -> bool:
        """Pending work that genuinely needs per-event ticks to retire."""
        return bool(
            self._waves
            or self._backside_fills
            or self._rtile_evictions
            or self._transport_active
            or self._replacement_active
            or self._root_buffers_busy()
        )

    def span_window(self, cycle: int):
        """A steady-state window view, or ``None`` (see the base contract).

        An L-NUCA window is analyzable only with the whole fabric quiet: no
        search waves, backside fills, evictions in flight, active network
        sweeps, occupied root buffers, pending corner pops or buffered
        r-tile writes (deferred drains are replayed up to ``cycle`` first,
        exactly as :meth:`can_accept` does), an idle r-tile MSHR file and
        all r-tile ports free.  Under those gates a resident load completes
        at ``start + completion`` and a resident store at ``start + 1``
        (dirtying the r-tile copy, no write-buffer traffic), so both loads
        *and* stores carry residency probes.  Hit-only windows keep the
        fabric quiet by construction, and the backside — at most deferred
        drain work of its own — stays unobserved throughout.
        """
        if self._corner_evictions or self._rtile_wb._queue:
            self._pump_drains(cycle)
        if (
            self._waves
            or self._backside_fills
            or self._rtile_evictions
            or self._corner_evictions
            or self._transport_active
            or self._replacement_active
            or self._rtile_wb._queue
            or self._root_buffers_busy()
        ):
            return None
        rtile = self.rtile
        if rtile._initiation_cycles != 1 or not rtile.mshr.is_idle():
            return None
        for free in rtile._port_free_cycle:
            if free > cycle:
                return None
        view = self._span_view
        if view is None:
            view = self._span_view = _LNUCASpanView(self)
        return view

    def finalize(self, cycle: int) -> int:
        """Drain all in-flight state, then let the backside finish draining.

        Fine-grained work (waves, fills, network sweeps) drains through the
        normal event loop; once only deferred backside drains remain, the
        tail is burst-replayed in one :meth:`_pump_drains` call instead of
        crawling one cycle per iteration through drain-only spans.
        """
        guard = cycle
        limit = cycle + FINALIZE_GUARD_CYCLES
        while self._fine_grained_busy() and guard < limit:
            self.tick(guard)
            nxt = self.next_event_cycle(guard)
            guard = nxt if nxt is not None and nxt > guard else guard + 1
        reached = self._pump_drains(limit)
        if reached > guard:
            guard = reached
        if self._fine_grained_busy() or self._corner_evictions or self._rtile_wb._queue:
            raise self.wedged_error(cycle)
        self.backside.finalize(guard)
        return guard

    def pending_work(self) -> str:
        parts = []
        if self._waves:
            parts.append(f"{len(self._waves)} search wave(s)")
        if self._backside_fills:
            parts.append(f"{len(self._backside_fills)} backside fill(s)")
        if self._rtile_evictions:
            parts.append(f"{len(self._rtile_evictions)} r-tile eviction(s)")
        if self._corner_evictions:
            parts.append(f"{len(self._corner_evictions)} corner eviction(s)")
        if self._transport_active:
            parts.append(f"transport active at {len(self._transport_active)} tile(s)")
        if self._replacement_active:
            parts.append(f"replacement active at {len(self._replacement_active)} tile(s)")
        if not self.rtile.write_buffer.is_empty():
            parts.append(f"r-tile wb:{self.rtile.write_buffer.occupancy}")
        if self._root_buffers_busy():
            parts.append("root D buffers occupied")
        if self.backside.busy():
            parts.append(f"backside: {self.backside.pending_work()}")
        return "; ".join(parts) if parts else "none"

    # ------------------------------------------------------------------ stores
    def _issue_store(self, request: MemoryRequest, cycle: int) -> None:
        start = self.rtile.reserve_port(cycle)
        block = self.rtile.lookup(request.addr, start, is_write=True)
        block_addr = self.rtile.block_addr(request.addr)
        request.complete(start + 1, self.rtile.name)
        if block is not None:
            # Store hit: the r-tile keeps the dirty block; it reaches the
            # backside later, when it dominoes off an upper-corner tile.
            block.dirty = True
            return
        # The block may be a victim still waiting to enter the Replacement
        # network — updating it there preserves exclusion.
        for index, (victim_addr, _) in enumerate(self._rtile_evictions):
            if victim_addr == block_addr:
                self._rtile_evictions[index] = (victim_addr, True)
                return
        # Store miss: the write searches the tile fabric like any other
        # request; only a *global* write miss leaves for the backside
        # (Fig. 2(c): "write misses to L3").
        mshr = self.rtile.mshr
        if mshr.has_entry(block_addr):
            # The block is already on its way to the r-tile; it will be
            # written once it arrives (timing-wise nothing more to model).
            self.stats.incr("store_merges")
            return
        if mshr.is_full():
            # No tracking resources left: post the write straight to the
            # backside through the write buffer instead of searching.
            if self.rtile.write_buffer.can_accept():
                self.rtile.write_buffer.coalesce_or_push(block_addr, start)
            else:
                self.stats.incr("store_buffer_full_stalls")
            return
        mshr.allocate(block_addr, start + 1)
        self._launch_wave(block_addr, start + 1, is_write=True)

    # ------------------------------------------------------------------ loads
    def _issue_load(self, request: MemoryRequest, cycle: int) -> None:
        start = self.rtile.reserve_port(cycle)
        block = self.rtile.lookup(request.addr, start, is_write=False)
        if block is not None:
            request.complete(start + self._rtile_completion, self.rtile.name)
            return

        block_addr = self.rtile.block_addr(request.addr)
        miss_known = start + self._rtile_miss_known

        # A victim still waiting to enter the Replacement network behaves
        # like a victim-buffer hit; consuming it here preserves exclusion.
        for index, (victim_addr, dirty) in enumerate(self._rtile_evictions):
            if victim_addr == block_addr:
                del self._rtile_evictions[index]
                self._refill_rtile(block_addr, miss_known + 1, dirty)
                request.complete(miss_known + 1, self.rtile.name)
                self.stats.incr("rtile_victim_buffer_hits")
                return

        mshr = self.rtile.mshr
        entry = mshr.get(block_addr)
        if entry is not None:
            if entry.secondary < mshr.max_secondary:
                mshr.merge(block_addr, miss_known)
            entry.waiters.append(request)
            self.stats.incr("secondary_miss_merges")
            return
        if mshr.is_full():
            raise SimulationError("load issued with a full L-NUCA MSHR file")
        entry = mshr.allocate(block_addr, miss_known)
        entry.waiters.append(request)
        self._launch_wave(block_addr, miss_known + 1, is_write=False)

    def _launch_wave(self, block_addr: int, earliest_cycle: int, is_write: bool) -> None:
        """Start a search wave; the r-tile injects at most one wave per cycle."""
        launch = max(earliest_cycle, self._last_wave_cycle + 1)
        self._last_wave_cycle = launch
        frontier = self._level_frontiers[0][0]
        self.search_net.record_broadcast(len(frontier))
        self._waves.append(
            SearchWave(
                block_addr=block_addr,
                frontier=frontier,
                next_cycle=launch,
                launched_cycle=launch,
                is_write=is_write,
            )
        )
        self.stats.incr("search_waves")

    # ------------------------------------------------------------------ tick
    def tick(self, cycle: int) -> None:
        pending_drains = bool(self._corner_evictions or self._rtile_wb._queue)
        if pending_drains:
            self._pump_drains(cycle)  # replay drains deferred across skipped cycles
        if (
            self._waves
            or self._backside_fills
            or self._rtile_evictions
            or self._transport_active
            or self._replacement_active
            or self._root_buffers_busy()
        ):
            if self._waves:
                # Replay any wave steps the scheduler leapt over before the
                # frontiers become observable (replacement conflict sets,
                # the decisive probe itself).
                self._catch_up_waves(cycle)
            self._deliver_to_rtile(cycle)
            self._advance_transport(cycle)
            if self._replacement_active:
                # The search/replacement conflict set is only needed when a
                # replacement sweep will actually run, and nothing before
                # this point mutates the wave frontiers.
                searching = self._tiles_searching_at(cycle) if self._waves else set()
                self._advance_replacement(cycle, searching)
            self._advance_search(cycle)
            self._inject_rtile_evictions(cycle)
        if pending_drains or self._corner_evictions or self._rtile_wb._queue:
            self._pump_drains(cycle + 1)  # this cycle's write-buffer/corner drains
        self.backside.tick(cycle)

    # -- helpers -------------------------------------------------------------
    def _root_buffers_busy(self) -> bool:
        """Whether any root D buffer holds a message (hot, allocation-free)."""
        for _, buffer in self._root_d_items:
            if buffer._entries:
                return True
        return False

    def _tiles_searching_at(self, cycle: int) -> set:
        searching: set = set()
        for wave in self._waves:
            if wave.next_cycle == cycle:
                searching.update(wave.frontier)
        return searching

    # -- step 1: deliveries into the r-tile -----------------------------------
    def _deliver_to_rtile(self, cycle: int) -> None:
        delivered = 0
        ports = self.config.rtile_fill_ports
        counters = self.stats._counters
        # Transport arrivals first (they are the latency-critical path).
        for source, buffer in self._root_d_items:
            if delivered >= ports:
                break
            message = buffer.pop()
            if message is None:
                continue
            delivered += 1
            actual = cycle - message.created_cycle
            minimum = max(1, self.geometry.min_transport_hops(message.source))
            counters["transport_actual_cycles"] += actual
            counters["transport_min_cycles"] += minimum
            counters["transport_deliveries"] += 1.0
            level = self.geometry.level_of[message.source]
            self._complete_waiters(message.block_addr, cycle, f"Le{level}")
            self._refill_rtile(message.block_addr, cycle, message.dirty)
        while delivered < ports and self._backside_fills:
            ready, _, block_addr, level = self._backside_fills[0]
            if ready > cycle:
                break
            heapq.heappop(self._backside_fills)
            delivered += 1
            self._complete_waiters(block_addr, cycle, level)
            self._refill_rtile(block_addr, cycle, dirty=False)

    def _complete_waiters(self, block_addr: int, cycle: int, level: str) -> None:
        mshr = self.rtile.mshr
        entry = mshr.get(block_addr)
        if entry is None:
            self.stats.incr("stray_fills")
            return
        for waiter in entry.waiters:
            waiter.complete(cycle, level)
        if entry.waiters and level != self.rtile.name:
            self.stats.incr(f"read_hits_{level}", len(entry.waiters))
        mshr.release(block_addr)

    def _refill_rtile(self, block_addr: int, cycle: int, dirty: bool) -> None:
        victim = self.rtile.fill(block_addr, cycle, dirty=dirty)
        if victim is not None:
            self._rtile_evictions.append((victim.block_addr, victim.dirty))
            self.stats.incr("rtile_evictions")

    # -- step 2: transport network ---------------------------------------------
    def _advance_transport(self, cycle: int) -> None:
        if not self._transport_active:
            return
        active = sorted(self._transport_active, key=self._distance_of.__getitem__)
        for coord in active:
            tile = self.tiles[coord]
            moved_everything = True
            # A previously blocked hit injection retries first.
            if tile.pending_hit is not None:
                if self._route_transport(coord, tile.pending_hit, cycle):
                    tile.pending_hit = None
                else:
                    moved_everything = False
            for buffer in tile.d_in.values():
                message = buffer.peek()
                if message is None:
                    continue
                if self._route_transport(coord, message, cycle):
                    buffer.pop()
                if buffer.peek() is not None:
                    moved_everything = False
            if moved_everything and tile.pending_hit is None:
                self._transport_active.discard(coord)

    def _route_transport(self, coord: Coordinate, message: Message, cycle: int) -> bool:
        options = self.transport_net.open_outputs(coord, cycle)
        if not options:
            self.stats.incr("transport_blocked_cycles")
            return False
        destination = self.transport_net.choose_output(options)
        self.transport_net.send(coord, destination, message, cycle)
        if destination != ROOT:
            self._transport_active.add(destination)
        return True

    # -- step 3: replacement network ---------------------------------------------
    def _advance_replacement(self, cycle: int, searching: set) -> None:
        if not self._replacement_active:
            return
        active = sorted(
            self._replacement_active,
            key=self._distance_of.__getitem__,
            reverse=True,
        )
        for coord in active:
            if coord in searching:
                # Replacement only proceeds during search-idle cycles.
                continue
            tile = self.tiles[coord]
            buffer = next((b for b in tile.u_in.values() if b), None)
            if buffer is None:
                self._replacement_active.discard(coord)
                continue
            message = buffer.peek()
            needs_eviction = (
                tile.array.set_is_full(message.block_addr)
                and not tile.contains(message.block_addr)
            )
            if needs_eviction and coord not in self.geometry.corner_tiles:
                options = self.replacement_net.open_outputs(coord, cycle)
                if not options:
                    self.stats.incr("replacement_blocked_cycles")
                    continue
            buffer.pop()
            self._u_contents.pop(message.block_addr, None)
            victim = tile.fill(message.block_addr, cycle, message.dirty)
            self.stats.incr("tile_fills")
            if victim is not None:
                self._push_victim(coord, victim.block_addr, victim.dirty, cycle)
            if not any(b for b in tile.u_in.values()):
                self._replacement_active.discard(coord)

    def _push_victim(self, coord: Coordinate, block_addr: int, dirty: bool, cycle: int) -> None:
        if coord in self.geometry.corner_tiles or not self.geometry.replacement_outputs.get(coord):
            self._corner_evictions.append((block_addr, dirty, cycle))
            self.stats.incr("corner_evictions")
            return
        options = self.replacement_net.open_outputs(coord, cycle)
        if not options:
            # The victim was already read out; fall back to evicting it to
            # the backside rather than dropping it (rare, counted).
            self._corner_evictions.append((block_addr, dirty, cycle))
            self.stats.incr("replacement_overflow_evictions")
            return
        destination = self.replacement_net.choose_output(options)
        message = Message(
            kind=MessageKind.REPLACEMENT,
            block_addr=block_addr,
            created_cycle=cycle,
            source=coord,
            dirty=dirty,
        )
        self.replacement_net.send(coord, destination, message, cycle)
        self._u_contents[block_addr] = destination
        self._replacement_active.add(destination)

    def _inject_rtile_evictions(self, cycle: int) -> None:
        while self._rtile_evictions:
            options = self.replacement_net.open_outputs(ROOT, cycle)
            if not options:
                self.stats.incr("rtile_eviction_blocked_cycles")
                return
            block_addr, dirty = self._rtile_evictions.popleft()
            destination = self.replacement_net.choose_output(options)
            message = Message(
                kind=MessageKind.REPLACEMENT,
                block_addr=block_addr,
                created_cycle=cycle,
                source=ROOT,
                dirty=dirty,
            )
            self.replacement_net.send(ROOT, destination, message, cycle)
            self._u_contents[block_addr] = destination
            self._replacement_active.add(destination)

    # -- step 4: search network -----------------------------------------------
    def _wave_decisive_cycle(self, wave: SearchWave) -> int:
        """First cycle at which ``wave`` does something observable.

        Observable means a probe that hits (LRU touch, extraction,
        transport injection) or the terminal expansion step (global-miss
        handling / wave retirement).  Every step before that only bumps
        probe/broadcast counters and the wave's own frontier, which
        :meth:`_catch_up_waves` replays in bulk.  Only valid as a
        scheduling target while the rest of the fabric is quiet: the
        content maps may shrink before the decisive cycle (making the
        estimate conservatively early — a harmless extra tick) but cannot
        gain a block, so no hit can materialise earlier than reported.
        """
        next_cycle = wave.next_cycle
        level_index = wave.level_index
        if level_index is None:
            # Post-hit fan-out: the block was extracted, so the wave just
            # sweeps to the leaves and retires.
            depth_below = self._depth_below
            return next_cycle + max(depth_below[c] for c in wave.frontier)
        block_addr = wave.block_addr
        index_of = self._frontier_index_of
        target = len(self._level_frontiers) - 1  # terminal step: global miss
        loc = self._tile_contents.get(block_addr)
        if loc is not None:
            hit_index = index_of.get(loc)
            if hit_index is not None and level_index <= hit_index < target:
                target = hit_index
        loc = self._u_contents.get(block_addr)
        if loc is not None:
            hit_index = index_of.get(loc)
            if hit_index is not None and level_index <= hit_index < target:
                target = hit_index
        return next_cycle + (target - level_index)

    def _catch_up_waves(self, cycle: int) -> None:
        """Burst-replay the miss-only wave steps of skipped cycles.

        The scheduler leaps from one decisive wave cycle to the next (see
        :meth:`next_event_cycle`); each skipped per-level step is a proven
        miss whose only effects are the bulk probe counter, one broadcast
        record, and the wave's frontier advance — replayed here, before
        anything else in the tick can observe a stale frontier.  Canonical
        (no-hit-yet) waves replay in O(1) off the precomputed frontier
        width prefix sums; pruned post-hit frontiers re-expand tile by
        tile, which is still cheap next to the machine cycles skipped.
        """
        tile_contents = self._tile_contents
        u_contents = self._u_contents
        for wave in self._waves:
            behind = cycle - wave.next_cycle
            if behind <= 0:
                continue
            if self._wave_decisive_cycle(wave) < cycle:
                raise SimulationError(
                    f"search wave for 0x{wave.block_addr:x} leapt past its "
                    f"decisive cycle: fabric mutated during a quiet window"
                )
            level_index = wave.level_index
            if level_index is not None:
                prefix = self._frontier_len_prefix
                self._search_lookups_bulk += (
                    prefix[level_index + behind] - prefix[level_index]
                )
                net_counters = self.search_net.stats._counters
                net_counters["broadcasts"] += float(behind)
                net_counters["link_traversals"] += (
                    prefix[level_index + behind + 1] - prefix[level_index + 1]
                )
                wave.level_index = level_index + behind
                wave.frontier = self._level_frontiers[wave.level_index][0]
                wave.next_cycle = cycle
                continue
            block_addr = wave.block_addr
            children_of = self.search_net.children_of
            while wave.next_cycle < cycle:
                frontier = wave.frontier
                loc = tile_contents.get(block_addr)
                if loc is None:
                    loc = u_contents.get(block_addr)
                if loc is not None and loc in frontier:
                    raise SimulationError(
                        f"search wave for 0x{wave.block_addr:x} found a hit "
                        f"in a skipped step: fabric mutated during a quiet "
                        f"window"
                    )
                self._search_lookups_bulk += len(frontier)
                next_frontier: List[Coordinate] = []
                for coord in frontier:
                    next_frontier.extend(children_of(coord))
                self.search_net.record_broadcast(len(next_frontier))
                wave.frontier = next_frontier
                wave.next_cycle += 1

    def _advance_search(self, cycle: int) -> None:
        """Advance every wave due this cycle by one level.

        The content maps answer "which tile (or U buffer) holds this
        block" in O(1), so a wave step only *probes* the hit tile (whose
        probe has observable effects: hit counters, the LRU touch, the
        extraction); every other frontier tile just accounts the tag
        lookup its dense probe would have performed.  The frontier itself
        still advances tile by tile — its width drives the search-network
        broadcast energy and the search/replacement conflict sets — and a
        frontier that contains the hit tile twice (two parents fanning
        into it) re-counts the second probe as the post-extraction miss it
        would dense-mode be.
        """
        finished: List[SearchWave] = []
        tiles = self.tiles
        children_of = self.search_net.children_of
        tile_contents = self._tile_contents
        u_contents = self._u_contents
        level_frontiers = self._level_frontiers
        last_level = len(level_frontiers) - 1
        for wave in self._waves:
            if wave.next_cycle != cycle:
                continue
            block_addr = wave.block_addr
            level_index = wave.level_index
            if level_index is not None:
                # Canonical expansion: precomputed frontier and set, O(1)
                # membership probes, bulk lookup accounting.
                frontier, frontier_set = level_frontiers[level_index]
                loc = tile_contents.get(block_addr)
                if loc is not None and loc in frontier_set:
                    hit_coord, via_u = loc, False
                else:
                    loc = u_contents.get(block_addr)
                    if loc is not None and loc in frontier_set:
                        hit_coord, via_u = loc, True
                    else:
                        self._search_lookups_bulk += len(frontier)
                        if level_index < last_level:
                            wave.level_index = level_index + 1
                            nxt = level_frontiers[level_index + 1][0]
                            self.search_net.record_broadcast(len(nxt))
                            wave.frontier = nxt
                            wave.next_cycle = cycle + 1
                        else:
                            finished.append(wave)
                            if not wave.hit:
                                self.search_net.record_global_miss()
                                self.stats.incr("global_misses")
                                self._handle_global_miss(wave, cycle)
                        continue
            else:
                frontier = wave.frontier
                hit_coord = None
                via_u = False
                loc = tile_contents.get(block_addr)
                if loc is not None and loc in frontier:
                    hit_coord = loc
                else:
                    loc = u_contents.get(block_addr)
                    if loc is not None and loc in frontier:
                        hit_coord = loc
                        via_u = True
            next_frontier: List[Coordinate] = []
            extend_frontier = next_frontier.extend
            if hit_coord is None:
                self._search_lookups_bulk += len(frontier)
                for coord in frontier:
                    extend_frontier(children_of(coord))
            else:
                wave.level_index = None  # the hit prunes the canonical fan-out
                unhandled = True
                for coord in frontier:
                    if unhandled and coord == hit_coord:
                        unhandled = False  # handled below; no fan-out
                        continue
                    self._search_lookups_bulk += 1.0
                    extend_frontier(children_of(coord))
                tile = tiles[hit_coord]
                if via_u:
                    tile.stats._counters["search_lookups"] += 1.0
                    in_flight = tile.lookup_u_buffers(block_addr)
                    if in_flight is None:
                        raise SimulationError(
                            f"search content map desynchronised: 0x{block_addr:x} "
                            f"not in U buffers of {hit_coord}"
                        )
                    source, message = in_flight
                    dirty = message.dirty
                    tile.u_in[source].remove(message)
                    u_contents.pop(block_addr, None)
                else:
                    block = tile.lookup(block_addr, cycle)
                    if block is None:
                        raise SimulationError(
                            f"search content map desynchronised: 0x{block_addr:x} "
                            f"not in tile {hit_coord}"
                        )
                    dirty = block.dirty
                    tile.extract(block_addr)
                wave.hit = True
                wave.hit_level = self.geometry.level_of[hit_coord]
                self.stats.incr(f"tile_hits_Le{wave.hit_level}")
                transport = Message(
                    kind=MessageKind.TRANSPORT,
                    block_addr=block_addr,
                    created_cycle=cycle,
                    source=hit_coord,
                    dirty=dirty or wave.is_write,
                )
                if not self._route_transport(hit_coord, transport, cycle):
                    tile.pending_hit = transport
                    self._transport_active.add(hit_coord)
                    self.search_net.record_contention_restart()
                    self.stats.incr("contention_marked_hits")
            if next_frontier:
                self.search_net.record_broadcast(len(next_frontier))
                wave.frontier = next_frontier
                wave.next_cycle = cycle + 1
            else:
                finished.append(wave)
                if not wave.hit:
                    self.search_net.record_global_miss()
                    self.stats.incr("global_misses")
                    self._handle_global_miss(wave, cycle)
        for wave in finished:
            self._waves.remove(wave)

    def _handle_global_miss(self, wave: SearchWave, cycle: int) -> None:
        entry = self.rtile.mshr.get(wave.block_addr)
        has_load_waiters = entry is not None and bool(entry.waiters)
        if wave.is_write and not has_load_waiters:
            # Global write miss: release the tracking entry and post the
            # write towards the backside (no data needs to come back).
            if entry is not None:
                self.rtile.mshr.release(wave.block_addr)
            self.stats.incr("global_write_misses")
            if self.rtile.write_buffer.can_accept():
                self.rtile.write_buffer.coalesce_or_push(wave.block_addr, cycle)
            else:
                self._corner_evictions.append((wave.block_addr, True, cycle))
            return
        self._forward_to_backside(wave.block_addr, cycle + 1)

    def _forward_to_backside(self, block_addr: int, cycle: int) -> None:
        response = self.backside.issue(block_addr, AccessType.LOAD, cycle)
        ready = response.complete_cycle if response.complete_cycle is not None else cycle + 1
        level = response.service_level or self.backside.name
        heapq.heappush(
            self._backside_fills, (ready, next(self._fill_seq), block_addr, level)
        )

    # -- step 5: backside traffic ------------------------------------------------
    def _pump_drains(self, limit: int) -> int:
        """Replay deferred backside drains firing strictly below ``limit``.

        Dense mode ends every cycle by draining at most one write-buffer
        entry (when its port is free) and popping at most one corner
        eviction.  Both schedules are fully determined by the queue
        contents — write-buffer fires follow the port interval, corner pops
        happen every cycle while the queue is non-empty — so the event
        kernel defers them entirely and this method burst-replays the
        missed span, posting each write to the backside at the exact cycle
        a dense run would have used.  Within a cycle the write-buffer entry
        drains before the corner pop, preserving dense ordering.

        Returns the cycle after the latest drain applied (0 when nothing
        drained), so :meth:`finalize` can report how far the tail reached.
        """
        reached = 0
        wb = self.rtile.write_buffer
        corner = self._corner_evictions
        if not corner and not wb._queue:
            return reached
        backside = self.backside
        while corner:
            corner_fire = corner[0][2]
            floor = self._corner_last_pop + 1
            if corner_fire < floor:
                corner_fire = floor
            wb_fire = wb.next_fire_cycle()
            if wb_fire is not None and wb_fire <= corner_fire:
                if wb_fire >= limit:
                    return reached
                entry = wb.drain_one(wb_fire)
                backside.post_write(entry.block_addr, wb_fire)
                reached = wb_fire + 1
                if wb_fire < corner_fire:
                    continue
            if corner_fire >= limit:
                return reached
            block_addr, dirty, _ = corner.popleft()
            self._corner_last_pop = corner_fire
            reached = corner_fire + 1
            if dirty:
                backside.post_write(block_addr, corner_fire)
                self.stats.incr("corner_writebacks")
            else:
                self.stats.incr("corner_clean_drops")
        for entry, fire in wb.drain_until(limit):
            backside.post_write(entry.block_addr, fire)
            reached = fire + 1
        return reached

    # ------------------------------------------------------------------ warm-up
    def prewarm(self, addresses) -> None:
        """Functionally install an address stream into the r-tile and tiles.

        Placement mirrors what the timed model converges to: the most
        recently used blocks sit in the r-tile and earlier victims domino
        outwards along the Replacement network, preserving content
        exclusion.  The backside is pre-warmed with the same stream.
        """
        addresses = list(addresses)
        # Content exclusion means a block lives in at most one place, so one
        # location map replaces the per-address scan over every tile.
        location: Dict[int, Coordinate] = {}
        for resident in self.rtile.array.resident_blocks():
            location[resident.block_addr] = ROOT
        for coord, tile in self.tiles.items():
            for resident in tile.array.resident_blocks():
                location[resident.block_addr] = coord
        block_of = self.rtile.block_addr
        rtile_lookup = self.rtile.array.lookup
        location_pop = location.pop
        tiles = self.tiles
        prewarm_fill = self._prewarm_fill
        for addr in addresses:
            block = block_of(addr)
            if rtile_lookup(block, update_lru=True) is not None:
                continue
            holder = location_pop(block, None)
            if holder is not None and holder != ROOT:
                tiles[holder].array.invalidate(block)
            prewarm_fill(block, location)
        self.backside.prewarm(addresses)

    def _prewarm_fill(self, block_addr: int, location: Dict[int, Coordinate]) -> None:
        _, victim = self.rtile.array.fill(block_addr)
        location[block_addr] = ROOT
        node: Coordinate = ROOT
        while victim is not None:
            location.pop(victim.block_addr, None)
            outputs = self.geometry.replacement_outputs.get(node, [])
            if not outputs:
                break
            node = outputs[0]
            array = self.tiles[node].array
            displaced = None
            if array.set_is_full(victim.block_addr) and not array.contains(victim.block_addr):
                candidate = array.victim_for(victim.block_addr)
                if candidate is not None:
                    displaced = array.invalidate(candidate.block_addr)
                    location.pop(candidate.block_addr, None)
            array.fill(victim.block_addr, dirty=victim.dirty)
            location[victim.block_addr] = node
            victim = displaced

    # ------------------------------------------------------------------ coherence
    def invalidate_block(self, block_addr: int) -> bool:
        """Invalidate ``block_addr`` everywhere in the fabric (Section III-D).

        The paper enforces inclusion with respect to the coherency point
        (the next cache level) through explicit invalidations; this is the
        hook that coherence apparatus would call.  The block is removed from
        the r-tile, every tile, the eviction queues, and any in-flight
        Transport/Replacement buffer entry.  Returns True if a copy was
        found.
        """
        block_addr = self.rtile.block_addr(block_addr)
        self.stats.incr("invalidations")
        found = self.rtile.array.invalidate(block_addr) is not None
        for tile in self.tiles.values():
            if tile.array.invalidate(block_addr) is not None:
                found = True
        for queue in (self._rtile_evictions, self._corner_evictions):
            for index, entry in enumerate(queue):
                if entry[0] == block_addr:
                    del queue[index]
                    found = True
                    break
        for network in (self.transport_net, self.replacement_net):
            for buffer in network.link_buffers.values():
                message = buffer.find_block(block_addr)
                if message is not None:
                    buffer.remove(message)
                    found = True
        self._u_contents.pop(block_addr, None)
        for buffer in self.root_d_buffers.values():
            message = buffer.find_block(block_addr)
            if message is not None:
                buffer.remove(message)
                found = True
        if found:
            self.stats.incr("invalidation_hits")
        return found

    # ------------------------------------------------------------------ queries
    def tile_at(self, coord: Coordinate) -> Tile:
        """Return the tile at ``coord`` (raises for the r-tile or outside)."""
        return self.tiles[coord]

    def find_block(self, block_addr: int) -> List[Coordinate]:
        """Return every location (tile coordinate or ``ROOT``) holding the block.

        With content exclusion this list never has more than one entry; the
        property-based tests rely on this.
        """
        holders: List[Coordinate] = []
        if self.rtile.array.contains(block_addr):
            holders.append(ROOT)
        for coord, tile in self.tiles.items():
            if tile.contains(block_addr):
                holders.append(coord)
        return holders

    def total_occupancy(self) -> int:
        """Number of blocks resident across the r-tile and all tiles."""
        return self.rtile.array.occupancy() + sum(
            tile.occupancy() for tile in self.tiles.values()
        )

    def activity(self) -> Dict[str, float]:
        merged = dict(self.stats.as_dict())
        for key, value in self.rtile.stats.as_dict().items():
            merged[f"L1-RT.{key}"] = value
        tile_totals: Dict[str, float] = {}
        for tile in self.tiles.values():
            for key, value in tile.stats.as_dict().items():
                tile_totals[key] = tile_totals.get(key, 0.0) + value
        if self._search_lookups_bulk:
            # Miss probes are accounted in bulk (see __init__); they belong
            # to the same fleet-wide total dense per-tile probing fed.
            tile_totals["search_lookups"] = (
                tile_totals.get("search_lookups", 0.0) + self._search_lookups_bulk
            )
        for key, value in tile_totals.items():
            merged[f"tiles.{key}"] = value
        for net in (self.search_net, self.transport_net, self.replacement_net):
            for key, value in net.stats.as_dict().items():
                merged[f"{net.stats.name}.{key}"] = value
        for key, value in self.backside.activity().items():
            merged[key] = merged.get(key, 0.0) + value
        return merged
