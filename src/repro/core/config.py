"""L-NUCA configuration objects.

The defaults reproduce the paper's evaluated design points: 8 KB 2-way
32 B-block one-cycle tiles (the largest tile Cacti fit in the 19 FO4 cycle),
a 32 KB 4-way r-tile, two-entry flow-control buffers per link, and 2/3/4
levels (LN2-72KB, LN3-144KB, LN4-248KB).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.cache import CacheConfig
from repro.common.errors import ConfigurationError


@dataclass
class TileConfig:
    """Static parameters of one L-NUCA tile.

    Table I: 8 KB, 2-way, 32 B blocks, parallel access, 1-cycle completion
    and initiation, copy-back, 1 port, 14 pJ per read hit, 2.2 mW leakage.
    """

    size_bytes: int = 8 * 1024
    associativity: int = 2
    block_size: int = 32
    read_energy_pj: float = 14.0
    write_energy_pj: float = 14.0
    leakage_mw: float = 2.2
    replacement: str = "lru"

    def __post_init__(self) -> None:
        if self.size_bytes < self.block_size:
            raise ConfigurationError("tile smaller than one block")
        if self.size_bytes % (self.associativity * self.block_size) != 0:
            raise ConfigurationError(
                "tile size must be a multiple of associativity * block_size"
            )


def default_rtile_config() -> CacheConfig:
    """Return the r-tile (L1) configuration from Table I.

    32 KB, 4-way, 32 B blocks, parallel access, 2-cycle completion, 1-cycle
    initiation, write-through, 2 ports, 21.2 pJ per read hit, 12.8 mW
    leakage.
    """
    return CacheConfig(
        name="L1-RT",
        size_bytes=32 * 1024,
        associativity=4,
        block_size=32,
        completion_cycles=2,
        initiation_cycles=1,
        ports=2,
        write_policy="write_through",
        access_mode="parallel",
        mshr_entries=16,
        mshr_secondary=4,
        write_buffer_entries=32,
        read_energy_pj=21.2,
        leakage_mw=12.8,
    )


@dataclass
class LNUCAConfig:
    """Full configuration of an L-NUCA cache.

    Attributes:
        levels: total number of levels including the r-tile level (Le1), so
            ``levels=3`` is the LN3-144KB design point.
        tile: per-tile parameters.
        rtile: r-tile (L1) parameters.
        buffer_depth: entries per flow-control (D and U) buffer.
        rtile_fill_ports: blocks the r-tile can accept per cycle from the
            Transport network / backside fills (bounded by its 2 ports).
        mshr_entries / mshr_secondary: the L-NUCA MSHR file (Table I: 16/4).
        routing_policy: ``"random"`` (the paper's dynamic distributed
            routing) or ``"deterministic"`` (always the first valid output;
            used by the routing ablation).
        exclusive: manage tile contents in exclusion (the paper's choice);
            the ablation benchmark can disable it.
        seed: seed for the routing random number generator.
    """

    levels: int = 3
    tile: TileConfig = field(default_factory=TileConfig)
    rtile: CacheConfig = field(default_factory=default_rtile_config)
    buffer_depth: int = 2
    rtile_fill_ports: int = 2
    mshr_entries: int = 16
    mshr_secondary: int = 4
    routing_policy: str = "random"
    exclusive: bool = True
    seed: int = 12345

    def __post_init__(self) -> None:
        if self.levels < 2:
            raise ConfigurationError("an L-NUCA needs at least 2 levels (r-tile + Le2)")
        if self.levels > 8:
            raise ConfigurationError("more than 8 levels is outside the validated range")
        if self.buffer_depth < 1:
            raise ConfigurationError("flow-control buffers need at least one entry")
        if self.rtile_fill_ports < 1:
            raise ConfigurationError("the r-tile needs at least one fill port")
        if self.routing_policy not in ("random", "deterministic"):
            raise ConfigurationError(f"unknown routing policy {self.routing_policy!r}")
        if self.rtile.block_size != self.tile.block_size:
            raise ConfigurationError(
                "all tiles (including the r-tile) must share the same block size"
            )

    # -- derived figures -------------------------------------------------------
    @property
    def tiles_per_level(self) -> list:
        """Number of tiles in each level, from Le1 (the r-tile) outwards."""
        counts = [1]
        for level in range(2, self.levels + 1):
            counts.append(4 * (level - 1) + 1)
        return counts

    @property
    def num_tiles(self) -> int:
        """Number of 8 KB tiles (excluding the r-tile)."""
        return sum(self.tiles_per_level[1:])

    @property
    def total_capacity_bytes(self) -> int:
        """Total L-NUCA capacity including the r-tile."""
        return self.rtile.size_bytes + self.num_tiles * self.tile.size_bytes

    @property
    def name(self) -> str:
        """Paper-style name, e.g. ``LN3-144KB``."""
        return f"LN{self.levels}-{self.total_capacity_bytes // 1024}KB"


def lnuca_config_for_levels(levels: int, **overrides) -> LNUCAConfig:
    """Convenience constructor for the paper's LN2/LN3/LN4 design points."""
    return LNUCAConfig(levels=levels, **overrides)
