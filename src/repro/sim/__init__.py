"""Simulation infrastructure: statistics, configurations, and run harness.

Only the dependency-free pieces (statistics and the abstract memory-system
interface) are imported eagerly here; the configuration presets and the run
harness live in :mod:`repro.sim.configs` and :mod:`repro.sim.runner` and are
re-exported lazily to avoid import cycles with the cache substrate.
"""

from repro.sim.memsys import MemorySystem
from repro.sim.stats import Histogram, Stats, geometric_mean, harmonic_mean

__all__ = [
    "CYCLE_TIME_NS",
    "Histogram",
    "MemorySystem",
    "RunResult",
    "Stats",
    "build_accountant",
    "build_conventional_hierarchy",
    "build_dnuca_hierarchy",
    "build_lnuca_dnuca_hierarchy",
    "build_lnuca_l3_hierarchy",
    "geometric_mean",
    "harmonic_mean",
    "l1_config",
    "l2_config",
    "l3_config",
    "run_suite",
    "simulate",
    "run_workload",
]

_LAZY_CONFIG_NAMES = {
    "CYCLE_TIME_NS",
    "build_accountant",
    "build_conventional_hierarchy",
    "build_dnuca_hierarchy",
    "build_lnuca_dnuca_hierarchy",
    "build_lnuca_l3_hierarchy",
    "l1_config",
    "l2_config",
    "l3_config",
}
_LAZY_RUNNER_NAMES = {"RunResult", "run_suite", "run_workload", "simulate"}


def __getattr__(name: str):
    if name in _LAZY_CONFIG_NAMES:
        from repro.sim import configs

        return getattr(configs, name)
    if name in _LAZY_RUNNER_NAMES:
        from repro.sim import runner

        return getattr(runner, name)
    raise AttributeError(f"module 'repro.sim' has no attribute {name!r}")
