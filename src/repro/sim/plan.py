"""Declarative run plans: one scheduler for every experiment sweep.

The experiment modules used to each hand-roll a loop around
:func:`~repro.sim.runner.run_suite`, re-synthesizing traces per run and
re-prewarming every hierarchy from scratch.  This module replaces those
loops with a compile/execute split:

* a sweep **compiles** (:func:`compile_sweep`) into a :class:`RunPlan` — a
  list of hashable :class:`JobSpec`\\ s over a registry of digestable
  builders (:class:`~repro.sim.configs.BuilderSpec`) and
  :class:`TraceSource`\\ s;
* one **executor** (:func:`execute`) runs the plan, with three fast paths
  that are guaranteed bit-identical to the direct path (fresh build,
  per-job prewarm, per-job synthesis):

  1. **trace pool** — each trace is materialized exactly once into a
     file-backed ``.lntr`` pool (:class:`TracePool`) and replayed from
     there, instead of being re-synthesized per sweep;
  2. **prewarm snapshots** — jobs that share a (builder, trace) pair clone
     a pickled functionally-prewarmed hierarchy instead of re-running
     ``system.prewarm`` (the snapshot store is process-global, keyed by
     content digests, so repeated sweeps and sibling experiments share it);
  3. **result cache** — finished :class:`~repro.sim.runner.RunResult`\\ s
     are memoized in a content-addressed on-disk cache
     (:class:`ResultCache`) keyed by (builder digest, trace digest,
     simulator version, run parameters), so a warm re-run performs zero
     simulation.

Safety rules
============

* Cache keys include :func:`simulator_version`; a ``-dirty`` (or unknown)
  git state bypasses the result cache entirely, so edited-tree results can
  never poison it.
* A truncated or corrupt cache entry is discarded with a
  :class:`RuntimeWarning` and re-simulated, never trusted and never fatal.
* Builders without a digestable parameter description (ad-hoc lambdas) and
  traces without a generation signature still execute — they just skip the
  result cache / pool and fall back to per-plan snapshot sharing.
* ``REPRO_CACHE_DIR`` overrides the on-disk cache location;
  ``REPRO_SIM_VERSION`` pins the simulator version (used by tests and CI).

Differential tests (``tests/test_plan.py``) enforce bit-identity of every
fast path against the direct path for all four hierarchy types, warm and
cold.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import subprocess
import warnings
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.cpu.core import CoreConfig, OoOCore
from repro.cpu.trace import Trace
from repro.cpu.workloads import WorkloadSpec, generate_trace
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.tracefile import (
    TraceFormatError,
    load_trace,
    read_meta,
    records_bytes,
    save_trace,
)
from repro.sim.configs import BuilderSpec, _canonical
from repro.sim.runner import RunResult, simulate

#: Bump when the cache entry layout or the digest scheme changes; old
#: entries then simply miss instead of being misread.
RESULT_SCHEMA = 1


# --------------------------------------------------------------------- version
def simulator_version() -> str:
    """The simulator identity baked into every result-cache key.

    ``REPRO_SIM_VERSION`` (tests, CI) takes precedence; otherwise the git
    commit of the source tree, with ``-dirty`` appended when tracked files
    have uncommitted modifications and ``unknown`` when git is unavailable.
    Both ``-dirty`` and ``unknown`` disable the result cache (see
    :func:`execute`): results from an unidentifiable tree must never be
    memoized.
    """
    pinned = os.environ.get("REPRO_SIM_VERSION")
    if pinned:
        return pinned
    return _git_version()


@lru_cache(maxsize=1)
def _git_version() -> str:
    cwd = os.path.dirname(os.path.abspath(__file__))
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        if out.returncode != 0 or not out.stdout.strip():
            return "unknown"
        commit = out.stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain", "--untracked-files=no"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        if status.returncode != 0 or status.stdout.strip():
            commit += "-dirty"
        return commit
    except (OSError, subprocess.SubprocessError):
        return "unknown"


# --------------------------------------------------------------------- sources
@dataclass
class TraceSource:
    """One workload's trace, described declaratively.

    ``signature`` is the canonical generation description (family, seed,
    params — everything that determines the instruction stream except the
    backend, which is bit-identical by design).  It keys the file-backed
    pool and is stored in captured headers so stale captures are detected.
    ``None`` means the source cannot be pooled (inline traces, opaque
    factories); it still executes and is still result-cacheable through its
    content digest.
    """

    name: str
    category: str
    num_instructions: int
    builder: Callable[[], Trace]
    signature: Optional[Dict[str, object]] = None
    #: Source kind ("scenario" / "workload" / "opaque"); disambiguates pool
    #: file names when a legacy workload and a catalog scenario share a name
    #: (the spec2006 port reuses the legacy names by design).
    kind: str = "opaque"

    def build(self) -> Trace:
        return self.builder()


def scenario_signature(spec: ScenarioSpec) -> Dict[str, object]:
    """Canonical generation signature of a scenario (capture-header shape).

    The ``vectorized`` backend override is excluded: both backends are
    bit-identical by design, so a capture generated with either must
    replay against the catalog spec without looking stale.
    """
    params = {key: value for key, value in spec.params.items() if key != "vectorized"}
    return {
        "family": spec.family,
        "seed": spec.seed,
        "params": _canonical(params),
    }


#: Process-global in-memory trace memo: generation-signature key -> Trace.
#: The tier above the file-backed pool — repeated sweeps in one process
#: (report, benchmarks, services) share the synthesized trace objects (and
#: with them the cached decode / resident-set / digest), instead of
#: re-synthesizing or re-reading the pool file per sweep.  Sound because
#: traces are immutable once generated; bounded FIFO.
_TRACE_MEMO: "OrderedDict[str, Trace]" = OrderedDict()
_TRACE_MEMO_CAP = 32


def _memo_key(source: "TraceSource") -> Optional[str]:
    if source.signature is None:
        return None
    return json.dumps(
        {"signature": source.signature, "n": source.num_instructions,
         "name": source.name, "category": source.category},
        sort_keys=True,
    )


def trace_source_for(
    spec,
    num_instructions: int,
    trace_factory: Optional[Callable] = None,
    pregenerated: Optional[Trace] = None,
) -> TraceSource:
    """Build the :class:`TraceSource` for one sweep spec.

    ``spec`` may be a legacy :class:`~repro.cpu.workloads.WorkloadSpec`, a
    :class:`~repro.scenarios.spec.ScenarioSpec`, or any object with
    ``name``/``category`` that ``trace_factory`` understands (opaque: no
    pool signature).  ``pregenerated`` short-circuits generation entirely
    (e.g. traces replayed by the caller).
    """
    name, category = spec.name, spec.category
    if pregenerated is not None:
        return TraceSource(
            name, category, num_instructions, builder=lambda: pregenerated
        )
    if isinstance(spec, ScenarioSpec):
        from repro.scenarios.registry import build_trace

        # A custom factory may synthesize anything; only the registry's
        # generator is known to honour the catalog signature, so anything
        # else stays opaque (no pool entry, no memo) rather than risking
        # serving custom content under the catalog identity.
        if trace_factory in (None, build_trace):
            return TraceSource(
                name,
                category,
                num_instructions,
                builder=lambda: build_trace(spec, num_instructions),
                signature=scenario_signature(spec),
                kind="scenario",
            )
    elif isinstance(spec, WorkloadSpec) and trace_factory in (None, generate_trace):
        return TraceSource(
            name,
            category,
            num_instructions,
            builder=lambda: generate_trace(spec, num_instructions),
            signature={"workload": _canonical(spec)},
            kind="workload",
        )
    factory = trace_factory or generate_trace
    return TraceSource(
        name, category, num_instructions, builder=lambda: factory(spec, num_instructions)
    )


def trace_digest(trace: Trace) -> str:
    """Content digest of a trace: name, category, and every record byte.

    Memoized on the trace (traces are immutable once generated), so sweeps
    that share a trace hash its record bytes exactly once.
    """
    cached = trace._digest_cache
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    digest.update(
        f"trace/{trace.name}\x00{trace.category}\x00{len(trace.instructions)}\x00".encode()
    )
    digest.update(records_bytes(trace))
    value = digest.hexdigest()
    trace._digest_cache = value
    return value


# ------------------------------------------------------------------ trace pool
class TracePool:
    """File-backed ``.lntr`` pool: each trace is synthesized exactly once.

    Pool entries are ordinary capture files (``{name}-{n}.lntr`` with the
    source's generation signature in the header), so they interoperate with
    ``scenarios generate`` captures.  A file whose header no longer matches
    the current signature — the scenario definition changed — is
    regenerated, as is an unreadable/truncated file; neither is ever
    silently replayed.
    """

    def __init__(self, directory: str, on_event: Optional[Callable[[str], None]] = None):
        self.directory = directory
        self._on_event = on_event

    def _note(self, message: str) -> None:
        if self._on_event is not None:
            self._on_event(message)

    def path_for(self, source: TraceSource) -> str:
        # Scenario entries keep the capture-file name scheme so they
        # interoperate with `scenarios generate`; legacy-workload entries
        # carry a `.wl` marker, because the spec2006 scenario port reuses
        # the legacy workload names and the two signatures must not fight
        # over one file.
        marker = ".wl" if source.kind == "workload" else ""
        return os.path.join(
            self.directory, f"{source.name}-{source.num_instructions}{marker}.lntr"
        )

    def _entry_current(self, path: str, source: TraceSource) -> bool:
        """True when a capture at ``path`` matches the source's signature."""
        try:
            meta = read_meta(path)
        except (OSError, TraceFormatError) as exc:
            self._note(f"{path}: unreadable capture ({exc}), regenerating")
            return False
        if (
            all(meta.get(key) == value for key, value in source.signature.items())
            and meta.get("instructions") == source.num_instructions
        ):
            return True
        self._note(f"{path}: stale capture (scenario changed), regenerating")
        return False

    def _save(self, path: str, source: TraceSource, trace: Trace,
              stats: Optional["ExecutionStats"]) -> None:
        try:
            os.makedirs(self.directory, exist_ok=True)
            tmp = f"{path}.tmp{os.getpid()}"
            save_trace(trace, tmp, extra_meta=source.signature)
            os.replace(tmp, path)
            if stats is not None:
                stats.pool_saves += 1
        except OSError as exc:
            # An unwritable pool degrades to per-run synthesis, not a crash.
            warnings.warn(
                f"trace pool: could not save {path} ({exc})", RuntimeWarning, stacklevel=2
            )

    def fetch(self, source: TraceSource, stats: Optional["ExecutionStats"] = None) -> Trace:
        """Return the source's trace, replaying from the pool when possible."""
        if source.signature is None:
            return source.build()
        path = self.path_for(source)
        if os.path.exists(path) and self._entry_current(path, source):
            trace = load_trace(path)
            if stats is not None:
                stats.pool_loads += 1
            return trace
        trace = source.build()
        self._save(path, source, trace, stats)
        return trace

    def ensure(self, source: TraceSource, trace: Trace,
               stats: Optional["ExecutionStats"] = None) -> None:
        """Capture ``trace`` unless a current pool entry already exists.

        Used when a trace was materialized outside the pool (the in-memory
        memo, a caller-supplied trace): the file-backed capture must still
        appear, so later processes replay instead of re-synthesizing.
        """
        if source.signature is None:
            return
        path = self.path_for(source)
        if os.path.exists(path) and self._entry_current(path, source):
            return
        self._save(path, source, trace, stats)


# ---------------------------------------------------------------- result cache
def default_cache_dir() -> str:
    """``REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro-lnuca`` (or ~/.cache)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro-lnuca")


class ResultCache:
    """Content-addressed on-disk memo of :class:`RunResult`\\ s.

    Entries are small JSON files under ``<directory>/results``; the file
    name is the full cache key (see :func:`_cache_key`), so a lookup is one
    ``open``.  All IO failures degrade to a miss; corrupt entries are
    discarded with a :class:`RuntimeWarning`.

    The cache is size-capped: when ``limit_mb`` (default: the
    ``REPRO_CACHE_LIMIT_MB`` environment variable; unlimited when unset)
    is exceeded, the oldest-access entries are pruned until the cache fits
    again.  Hits refresh their entry's access time, so a hot working set
    survives pruning; surviving entries are byte-untouched and keep
    returning bit-identical results.
    """

    #: Pruning is amortised: the size audit walks the entry tree, so it
    #: runs at most once every this many writes (and on the first write).
    PRUNE_EVERY = 32

    def __init__(self, directory: str, limit_mb: Optional[float] = None):
        self.directory = directory
        self._write_failed = False
        if limit_mb is None:
            env = os.environ.get("REPRO_CACHE_LIMIT_MB")
            if env:
                try:
                    limit_mb = float(env)
                except ValueError:
                    warnings.warn(
                        f"REPRO_CACHE_LIMIT_MB={env!r} is not a number; ignoring it",
                        RuntimeWarning,
                        stacklevel=2,
                    )
        self.limit_bytes = None if limit_mb is None else int(limit_mb * 1024 * 1024)
        self._puts_since_prune: Optional[int] = None  # None = never audited

    @classmethod
    def default(cls, limit_mb: Optional[float] = None) -> "ResultCache":
        return cls(default_cache_dir(), limit_mb=limit_mb)

    def prune(self) -> int:
        """Evict oldest-access entries until the cache fits its size limit.

        Returns the number of entries deleted (0 when unlimited or within
        budget).  Entry age is the access time recorded on hits and
        writes; ties and IO races degrade gracefully (a file someone else
        already removed just counts as pruned).
        """
        if self.limit_bytes is None:
            return 0
        root = os.path.join(self.directory, "results")
        entries: List[Tuple[float, int, str]] = []
        total = 0
        try:
            for dirpath, _, filenames in os.walk(root):
                for filename in filenames:
                    if not filename.endswith(".json"):
                        continue
                    path = os.path.join(dirpath, filename)
                    try:
                        info = os.stat(path)
                    except OSError:
                        continue
                    entries.append((info.st_mtime, info.st_size, path))
                    total += info.st_size
        except OSError:
            return 0
        deleted = 0
        if total > self.limit_bytes:
            entries.sort()
            for _, size, path in entries:
                try:
                    os.remove(path)
                except OSError:
                    pass
                total -= size
                deleted += 1
                if total <= self.limit_bytes:
                    break
        return deleted

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, "results", key[:2], f"{key}.json")

    def get(self, key: str) -> Optional[RunResult]:
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("schema") != RESULT_SCHEMA:
                return None
            if self.limit_bytes is not None:
                try:
                    os.utime(path)  # LRU stamp: hits protect their entry
                except OSError:
                    pass
            row = payload["result"]
            return RunResult(
                system=str(row["system"]),
                workload=str(row["workload"]),
                category=str(row["category"]),
                ipc=row["ipc"],
                cycles=row["cycles"],
                instructions=row["instructions"],
                activity=dict(row["activity"]),
                core_stats=dict(row["core_stats"]),
            )
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError) as exc:
            warnings.warn(
                f"result cache: discarding corrupt entry {path} ({exc})",
                RuntimeWarning,
                stacklevel=2,
            )
            try:
                os.remove(path)
            except OSError:
                pass
            return None

    def put(self, key: str, result: RunResult) -> None:
        path = self._path(key)
        payload = {
            "schema": RESULT_SCHEMA,
            "result": {
                "system": result.system,
                "workload": result.workload,
                "category": result.category,
                "ipc": result.ipc,
                "cycles": result.cycles,
                "instructions": result.instructions,
                "activity": result.activity,
                "core_stats": result.core_stats,
            },
        }
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            tmp = f"{path}.tmp{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, path)
        except OSError as exc:
            if not self._write_failed:
                self._write_failed = True
                warnings.warn(
                    f"result cache: disabled writes ({exc})", RuntimeWarning, stacklevel=2
                )
            return
        if self.limit_bytes is not None:
            count = self._puts_since_prune
            if count is None or count + 1 >= self.PRUNE_EVERY:
                self.prune()
                self._puts_since_prune = 0
            else:
                self._puts_since_prune = count + 1


def _core_config_digest(core_config: Optional[CoreConfig]) -> str:
    if core_config is None:
        return "default"
    return hashlib.sha256(
        json.dumps(_canonical(core_config), sort_keys=True).encode("utf-8")
    ).hexdigest()


def _cache_key(
    job: "JobSpec",
    builder_digest: str,
    trace_content_digest: str,
    core_digest: str,
    version: str,
) -> str:
    """The content address of one job's result.

    Deliberately excludes the job's display label (``job.system``): two
    sweeps that run the identical architecture on the identical trace share
    the entry, and the label is re-applied on lookup.
    """
    payload = json.dumps(
        {
            "schema": RESULT_SCHEMA,
            "simulator": version,
            "builder": builder_digest,
            "trace": trace_content_digest,
            "core": core_digest,
            "instructions": job.num_instructions,
            "prewarm": job.prewarm,
            "mode": job.mode,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ------------------------------------------------------------------- the plan
@dataclass(frozen=True)
class JobSpec:
    """One hashable (system, workload) simulation of a plan."""

    system: str  #: result label (``RunResult.system``)
    builder: str  #: key into ``RunPlan.builders``
    trace: str  #: key into ``RunPlan.traces``
    num_instructions: int
    prewarm: bool = True
    mode: str = "event"


@dataclass
class RunPlan:
    """A compiled sweep: jobs over builder and trace registries."""

    jobs: List[JobSpec]
    builders: Dict[str, BuilderSpec]
    traces: Dict[str, TraceSource]
    core_config: Optional[CoreConfig] = None


def compile_sweep(
    system_builders: Dict[str, Callable],
    specs: Iterable,
    num_instructions: int,
    core_config: Optional[CoreConfig] = None,
    prewarm: bool = True,
    mode: str = "event",
    trace_factory: Optional[Callable] = None,
    traces: Optional[Dict[str, Trace]] = None,
) -> RunPlan:
    """Compile a classic (builders x specs) sweep into a :class:`RunPlan`.

    Accepts exactly what :func:`~repro.sim.runner.run_suite` accepts:
    builders may be :class:`~repro.sim.configs.BuilderSpec`\\ s (digestable,
    cacheable) or plain callables (ad hoc, still executable); ``traces``
    short-circuits generation for the named workloads.  Job order is the
    historical sweep order — systems outer, specs inner.
    """
    specs = list(specs)
    pregenerated = dict(traces or {})
    builders = {
        name: builder if isinstance(builder, BuilderSpec)
        else BuilderSpec(key=name, factory=builder)
        for name, builder in system_builders.items()
    }
    sources = {
        spec.name: trace_source_for(
            spec, num_instructions, trace_factory, pregenerated.get(spec.name)
        )
        for spec in specs
    }
    jobs = [
        JobSpec(
            system=system_name,
            builder=system_name,
            trace=spec.name,
            num_instructions=num_instructions,
            prewarm=prewarm,
            mode=mode,
        )
        for system_name in builders
        for spec in specs
    ]
    return RunPlan(jobs=jobs, builders=builders, traces=sources, core_config=core_config)


# ------------------------------------------------------------------ snapshots
#: Process-global prewarm snapshot store: (builder digest, trace digest) ->
#: pickled functionally-prewarmed hierarchy.  Keyed by content digests, so
#: sharing across sweeps and experiments is always sound; bounded FIFO so a
#: long session cannot grow without limit.
_SNAPSHOT_BLOBS: "OrderedDict[Tuple[str, str], bytes]" = OrderedDict()
_SNAPSHOT_CAP = 64

#: Builders whose systems failed to pickle; they fall back to the direct
#: build-and-prewarm path permanently (per process).  Holds the factory
#: objects themselves (identity semantics) — keeping them alive on purpose,
#: so a recycled id() can never misclassify an unrelated builder.
_UNPICKLABLE_BUILDERS: set = set()


def _prewarmed_system(
    builder: BuilderSpec,
    trace: Trace,
    snapshot_key: Optional[Tuple[str, str]],
    local_blobs: Dict[Tuple[str, str], bytes],
    stats: "ExecutionStats",
):
    """A functionally-prewarmed system, cloned from a snapshot when possible.

    The snapshot is taken right after ``prewarm`` — before any timed state
    exists — so the blob preserves exactly the state a fresh
    build-and-prewarm produces.  The job that *creates* a snapshot runs on
    the pristine original (no unpickle); every later job of the same
    (builder, trace) pair runs on an unpickled clone.  Clone-equals-fresh
    is enforced by the differential tests in ``tests/test_plan.py``.
    """
    if snapshot_key is None or builder.factory in _UNPICKLABLE_BUILDERS:
        system = builder.factory()
        system.prewarm(trace.resident_addresses())
        return system
    store = _SNAPSHOT_BLOBS if builder.digest() is not None else local_blobs
    blob = store.get(snapshot_key)
    if blob is None:
        system = builder.factory()
        system.prewarm(trace.resident_addresses())
        try:
            blob = pickle.dumps(system, pickle.HIGHEST_PROTOCOL)
        except (pickle.PicklingError, TypeError, AttributeError):
            _UNPICKLABLE_BUILDERS.add(builder.factory)
            return system
        store[snapshot_key] = blob
        stats.snapshot_builds += 1
        if store is _SNAPSHOT_BLOBS:
            while len(_SNAPSHOT_BLOBS) > _SNAPSHOT_CAP:
                _SNAPSHOT_BLOBS.popitem(last=False)
        return system
    stats.snapshot_clones += 1
    return pickle.loads(blob)


# ------------------------------------------------------------------- executor
@dataclass
class ExecutionStats:
    """What one :func:`execute` call actually did."""

    jobs: int = 0
    simulated: int = 0
    cached: int = 0
    snapshot_builds: int = 0
    snapshot_clones: int = 0
    pool_loads: int = 0
    pool_saves: int = 0

    def add(self, other: "ExecutionStats") -> None:
        self.jobs += other.jobs
        self.simulated += other.simulated
        self.cached += other.cached
        self.snapshot_builds += other.snapshot_builds
        self.snapshot_clones += other.snapshot_clones
        self.pool_loads += other.pool_loads
        self.pool_saves += other.pool_saves

    def describe(self) -> str:
        return (
            f"jobs={self.jobs} simulated={self.simulated} cached={self.cached} "
            f"snapshot_clones={self.snapshot_clones} pool_loads={self.pool_loads}"
        )


@dataclass
class PlanRun:
    """Results of an executed plan (job order), plus what the executor did."""

    results: List[RunResult]
    stats: ExecutionStats = field(default_factory=ExecutionStats)


#: Stats sinks for nested :func:`execute` calls (``collect_stats``).
_COLLECTORS: List[ExecutionStats] = []


@contextmanager
def collect_stats():
    """Aggregate the stats of every :func:`execute` call inside the block.

    Used by the CLI to report, across a whole ``report`` invocation, how
    many jobs simulated versus hit the cache — the two-pass CI smoke
    asserts ``simulated=0`` on the warm pass.
    """
    stats = ExecutionStats()
    _COLLECTORS.append(stats)
    try:
        yield stats
    finally:
        _COLLECTORS.remove(stats)


_DIRTY_WARNED = False


def _warn_cache_bypassed(version: str) -> None:
    global _DIRTY_WARNED
    if not _DIRTY_WARNED:
        _DIRTY_WARNED = True
        warnings.warn(
            f"result cache bypassed: simulator version is {version!r} "
            "(commit your changes or set REPRO_SIM_VERSION to re-enable caching)",
            RuntimeWarning,
            stacklevel=3,
        )


def _run_job(
    plan: RunPlan,
    job: JobSpec,
    trace: Trace,
    snapshot_key: Optional[Tuple[str, str]],
    local_blobs: Dict,
    stats: ExecutionStats,
) -> RunResult:
    """Simulate one job (the only place a core is ever constructed)."""
    builder = plan.builders[job.builder]
    source = plan.traces[job.trace]
    if job.prewarm:
        system = _prewarmed_system(builder, trace, snapshot_key, local_blobs, stats)
    else:
        system = builder.factory()
    core = OoOCore(trace, system, config=plan.core_config)
    summary = simulate(core, mode=job.mode)
    return RunResult(
        system=job.system,
        workload=source.name,
        category=source.category,
        ipc=summary["ipc"],
        cycles=summary["cycles"],
        instructions=summary["instructions"],
        activity=system.activity(),
        core_stats=core.stats.as_dict(),
    )


#: State inherited by forked workers (fork + module global sidesteps
#: pickling builders, which are usually lambdas).
_EXEC_STATE: Dict[str, object] = {}


def _plan_worker(item) -> Tuple[int, RunResult, Tuple[int, int]]:
    index, job = item
    state = _EXEC_STATE
    stats: ExecutionStats = state["stats"]
    builds, clones = stats.snapshot_builds, stats.snapshot_clones
    result = _run_job(
        state["plan"],
        job,
        state["traces"][job.trace],
        state["snapshot_keys"].get(job),
        state["local_blobs"],
        stats,
    )
    # The per-worker stats object dies with the fork; ship this job's
    # snapshot-counter delta back so the parent's stats stay truthful.
    return index, result, (stats.snapshot_builds - builds, stats.snapshot_clones - clones)


def execute(
    plan: RunPlan,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    pool: Optional[TracePool] = None,
    snapshots: bool = True,
    trace_memo: bool = True,
) -> PlanRun:
    """Execute ``plan`` and return its results in job order.

    Args:
        workers: fan the uncached jobs out over that many forked worker
            processes (order-preserving and result-identical, exactly like
            the historical ``run_suite`` fan-out; falls back to sequential
            without ``fork``).
        cache: result cache; ``None`` disables memoization.  A ``-dirty``
            or unknown simulator version bypasses a configured cache with a
            warning.
        pool: trace pool; defaults to ``<cache dir>/traces`` when a cache
            is active, else in-memory synthesis.
        snapshots: clone prewarmed hierarchies across jobs that share a
            (builder, trace) pair; disable to force the direct
            build-and-prewarm path per job.
        trace_memo: share immutable synthesized traces (and their cached
            decode / resident set / digest) across execute calls in this
            process; disable to force per-plan materialization.
    """
    stats = ExecutionStats(jobs=len(plan.jobs))
    version: Optional[str] = None
    active_cache = cache
    if active_cache is not None:
        version = simulator_version()
        if version == "unknown" or version.endswith("-dirty"):
            _warn_cache_bypassed(version)
            active_cache = None
    if pool is None and active_cache is not None:
        pool = TracePool(os.path.join(active_cache.directory, "traces"))

    traces: Dict[str, Trace] = {}
    digests: Dict[str, str] = {}

    def materialize(key: str) -> Trace:
        trace = traces.get(key)
        if trace is None:
            source = plan.traces[key]
            memo_key = _memo_key(source) if trace_memo else None
            trace = _TRACE_MEMO.get(memo_key) if memo_key is not None else None
            if trace is None:
                trace = pool.fetch(source, stats) if pool is not None else source.build()
                if memo_key is not None:
                    _TRACE_MEMO[memo_key] = trace
                    while len(_TRACE_MEMO) > _TRACE_MEMO_CAP:
                        _TRACE_MEMO.popitem(last=False)
            elif pool is not None:
                # Memo hit, but the file-backed capture must still appear.
                pool.ensure(source, trace, stats)
            traces[key] = trace
        return trace

    def content_digest(key: str) -> str:
        digest = digests.get(key)
        if digest is None:
            digest = trace_digest(materialize(key))
            digests[key] = digest
        return digest

    core_digest = _core_config_digest(plan.core_config)
    results: List[Optional[RunResult]] = [None] * len(plan.jobs)
    pending: List[Tuple[int, JobSpec, Optional[str]]] = []
    for index, job in enumerate(plan.jobs):
        key: Optional[str] = None
        if active_cache is not None:
            builder_digest = plan.builders[job.builder].digest()
            if builder_digest is not None:
                key = _cache_key(
                    job, builder_digest, content_digest(job.trace), core_digest, version
                )
                hit = active_cache.get(key)
                if hit is not None:
                    hit.system = job.system
                    results[index] = hit
                    stats.cached += 1
                    continue
        pending.append((index, job, key))

    if pending:
        snapshot_keys: Dict[JobSpec, Tuple[str, str]] = {}
        local_blobs: Dict[Tuple[str, str], bytes] = {}
        for index, job, key in pending:
            materialize(job.trace)  # before any fork, so workers share memory
            if snapshots and job.prewarm:
                builder_digest = plan.builders[job.builder].digest()
                snapshot_keys[job] = (
                    builder_digest or f"adhoc:{job.builder}",
                    content_digest(job.trace),
                )
        stats.simulated = len(pending)

        if workers is not None and workers > 1 and len(pending) > 1 and hasattr(os, "fork"):
            import multiprocessing

            ctx = multiprocessing.get_context("fork")
            processes = min(workers, len(pending))
            _EXEC_STATE.update(
                plan=plan,
                traces=traces,
                snapshot_keys=snapshot_keys,
                local_blobs=local_blobs,
                stats=ExecutionStats(),  # per-worker scratch; parent keeps its own
            )
            try:
                with ctx.Pool(processes=processes) as mp_pool:
                    # pool.map's built-in chunking (~4 chunks per worker)
                    # hands jobs out in batches, so many-workload sweeps do
                    # not pay one IPC round-trip per job.
                    for index, result, (builds, clones) in mp_pool.map(
                        _plan_worker, [(index, job) for index, job, _ in pending]
                    ):
                        results[index] = result
                        stats.snapshot_builds += builds
                        stats.snapshot_clones += clones
            finally:
                _EXEC_STATE.clear()
        else:
            for index, job, _ in pending:
                results[index] = _run_job(
                    plan, job, traces[job.trace], snapshot_keys.get(job), local_blobs, stats
                )

        if active_cache is not None:
            for index, job, key in pending:
                if key is not None:
                    active_cache.put(key, results[index])

    for collector in _COLLECTORS:
        collector.add(stats)
    return PlanRun(results=results, stats=stats)
