"""Declarative run plans: one scheduler for every experiment sweep.

The experiment modules used to each hand-roll a loop around
:func:`~repro.sim.runner.run_suite`, re-synthesizing traces per run and
re-prewarming every hierarchy from scratch.  This module replaces those
loops with a compile/execute split:

* a sweep **compiles** (:func:`compile_sweep`) into a :class:`RunPlan` — a
  list of hashable :class:`JobSpec`\\ s over a registry of digestable
  builders (:class:`~repro.sim.configs.BuilderSpec`) and
  :class:`TraceSource`\\ s;
* one **executor** (:func:`execute`) runs the plan, with three fast paths
  that are guaranteed bit-identical to the direct path (fresh build,
  per-job prewarm, per-job synthesis):

  1. **trace pool** — each trace is materialized exactly once into a
     file-backed ``.lntr`` pool (:class:`TracePool`) and replayed from
     there, instead of being re-synthesized per sweep;
  2. **prewarm snapshots** — jobs that share a (builder, trace) pair clone
     a pickled functionally-prewarmed hierarchy instead of re-running
     ``system.prewarm``.  The snapshot store is tiered: a process-global
     L1 keyed by content digests, backed by an on-disk
     content-addressed blob store (:class:`SnapshotStore`) next to the
     result cache — so repeated sweeps, sibling experiments, *and every
     worker process* share one set of snapshots, across process
     lifetimes;
  3. **result cache** — finished :class:`~repro.sim.runner.RunResult`\\ s
     are memoized in a content-addressed on-disk cache
     (:class:`ResultCache`) keyed by (builder digest, trace digest,
     simulator version, run parameters), so a warm re-run performs zero
     simulation.

Fault tolerance
===============

``execute(workers=N)`` runs uncached jobs under a **supervised executor**
(:class:`_SupervisedExecutor`) drawing workers from a **persistent
process-global pool** (:class:`_WorkerPool`): workers are forked lazily,
outlive the ``execute()`` call, and are reused by later and concurrent
sweeps — jobs ship as self-contained payloads, so no fork lock serializes
fan-outs.  Jobs are dispatched one at a time over a per-worker pipe (a
dead worker loses only its current job, never a chunk), every job carries
a wall-clock timeout derived from its instruction budget, and a job whose
worker crashes, hangs, or returns garbage is retried with exponential
backoff on a replacement worker (the failing worker is discarded, never
returned to the pool).  A
job that exhausts its retries — it keeps killing workers — is
*quarantined*: the sweep still completes and reports a structured
:class:`JobFailure` instead of raising (opt-in ``strict`` mode raises
:class:`~repro.common.errors.ExecutionError`).  When forking itself keeps
failing the executor degrades to in-process execution with a warning.

Every sweep is **checkpoint-resumable**: finished results are committed
to the result cache *and* an fsync'd per-sweep journal
(:class:`SweepJournal`) as they complete, so re-running an interrupted
sweep simulates only the jobs that never finished.  The journal is
deleted when the sweep completes cleanly; corrupt journal lines (the
tail of a crash) are skipped, never trusted.

All of these paths are exercised deterministically by the fault-injection
harness in :mod:`repro.sim.faults` (``REPRO_FAULT_PLAN`` / test API).

Safety rules
============

* Cache keys include :func:`simulator_version`; a ``-dirty`` (or unknown)
  git state bypasses the result cache entirely, so edited-tree results can
  never poison it.
* A truncated or corrupt cache entry is discarded with a
  :class:`RuntimeWarning` and re-simulated, never trusted and never fatal
  (``ResultCache.verify`` — ``repro cache verify`` — scans for them).
* Builders without a digestable parameter description (ad-hoc lambdas) and
  traces without a generation signature still execute — they just skip the
  result cache / pool and fall back to per-plan snapshot sharing.
* ``REPRO_CACHE_DIR`` overrides the on-disk cache location;
  ``REPRO_SIM_VERSION`` pins the simulator version (used by tests and CI).

Differential tests (``tests/test_plan.py``, ``tests/test_supervised.py``)
enforce bit-identity of every fast path against the direct path for all
four hierarchy types, warm and cold — including sweeps whose workers are
crashed, hung, and corrupted mid-flight.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import pickle
import subprocess
import threading
import time
import warnings
from collections import OrderedDict, deque
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.sim import faults, schedstore

# Imported at module level on purpose: pool workers are forked lazily and
# must never take the import lock mid-job (a function-level import inside a
# forked worker can deadlock against an importing thread in the parent).
from repro.common.errors import ConfigurationError, ExecutionError, SimulationError
from repro.cpu.core import CoreConfig, OoOCore
from repro.cpu.trace import Trace
from repro.cpu.workloads import WorkloadSpec, generate_trace
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.tracefile import (
    TraceFormatError,
    map_trace,
    read_meta,
    records_bytes,
    save_trace,
    trace_from_records,
)
from repro.sim.configs import BuilderSpec, _canonical
from repro.sim.runner import RunResult, simulate

#: Bump when the cache entry layout or the digest scheme changes; old
#: entries then simply miss instead of being misread.
RESULT_SCHEMA = 1


# --------------------------------------------------------------------- version
def simulator_version() -> str:
    """The simulator identity baked into every result-cache key.

    ``REPRO_SIM_VERSION`` (tests, CI) takes precedence; otherwise the git
    commit of the source tree, with ``-dirty`` appended when tracked files
    have uncommitted modifications and ``unknown`` when git is unavailable.
    Both ``-dirty`` and ``unknown`` disable the result cache (see
    :func:`execute`): results from an unidentifiable tree must never be
    memoized.
    """
    pinned = os.environ.get("REPRO_SIM_VERSION")
    if pinned:
        return pinned
    return _git_version()


@lru_cache(maxsize=1)
def _git_version() -> str:
    cwd = os.path.dirname(os.path.abspath(__file__))
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        if out.returncode != 0 or not out.stdout.strip():
            return "unknown"
        commit = out.stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain", "--untracked-files=no"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        if status.returncode != 0 or status.stdout.strip():
            commit += "-dirty"
        return commit
    except (OSError, subprocess.SubprocessError):
        return "unknown"


# --------------------------------------------------------------------- sources
@dataclass
class TraceSource:
    """One workload's trace, described declaratively.

    ``signature`` is the canonical generation description (family, seed,
    params — everything that determines the instruction stream except the
    backend, which is bit-identical by design).  It keys the file-backed
    pool and is stored in captured headers so stale captures are detected.
    ``None`` means the source cannot be pooled (inline traces, opaque
    factories); it still executes and is still result-cacheable through its
    content digest.
    """

    name: str
    category: str
    num_instructions: int
    builder: Callable[[], Trace]
    signature: Optional[Dict[str, object]] = None
    #: Source kind ("scenario" / "workload" / "opaque"); disambiguates pool
    #: file names when a legacy workload and a catalog scenario share a name
    #: (the spec2006 port reuses the legacy names by design).
    kind: str = "opaque"

    def build(self) -> Trace:
        return self.builder()


def scenario_signature(spec: ScenarioSpec) -> Dict[str, object]:
    """Canonical generation signature of a scenario (capture-header shape).

    The ``vectorized`` backend override is excluded: both backends are
    bit-identical by design, so a capture generated with either must
    replay against the catalog spec without looking stale.
    """
    params = {key: value for key, value in spec.params.items() if key != "vectorized"}
    return {
        "family": spec.family,
        "seed": spec.seed,
        "params": _canonical(params),
    }


#: Process-global in-memory trace memo: generation-signature key -> Trace.
#: The tier above the file-backed pool — repeated sweeps in one process
#: (report, benchmarks, services) share the synthesized trace objects (and
#: with them the cached decode / resident-set / digest), instead of
#: re-synthesizing or re-reading the pool file per sweep.  Sound because
#: traces are immutable once generated; bounded FIFO.
_TRACE_MEMO: "OrderedDict[str, Trace]" = OrderedDict()
_TRACE_MEMO_CAP = 32


def _memo_key(source: "TraceSource") -> Optional[str]:
    if source.signature is None:
        return None
    return json.dumps(
        {"signature": source.signature, "n": source.num_instructions,
         "name": source.name, "category": source.category},
        sort_keys=True,
    )


def trace_source_for(
    spec,
    num_instructions: int,
    trace_factory: Optional[Callable] = None,
    pregenerated: Optional[Trace] = None,
) -> TraceSource:
    """Build the :class:`TraceSource` for one sweep spec.

    ``spec`` may be a legacy :class:`~repro.cpu.workloads.WorkloadSpec`, a
    :class:`~repro.scenarios.spec.ScenarioSpec`, or any object with
    ``name``/``category`` that ``trace_factory`` understands (opaque: no
    pool signature).  ``pregenerated`` short-circuits generation entirely
    (e.g. traces replayed by the caller).
    """
    name, category = spec.name, spec.category
    if pregenerated is not None:
        return TraceSource(
            name, category, num_instructions, builder=lambda: pregenerated
        )
    if isinstance(spec, ScenarioSpec):
        from repro.scenarios.registry import build_trace

        # A custom factory may synthesize anything; only the registry's
        # generator is known to honour the catalog signature, so anything
        # else stays opaque (no pool entry, no memo) rather than risking
        # serving custom content under the catalog identity.
        if trace_factory in (None, build_trace):
            return TraceSource(
                name,
                category,
                num_instructions,
                builder=lambda: build_trace(spec, num_instructions),
                signature=scenario_signature(spec),
                kind="scenario",
            )
    elif isinstance(spec, WorkloadSpec) and trace_factory in (None, generate_trace):
        return TraceSource(
            name,
            category,
            num_instructions,
            builder=lambda: generate_trace(spec, num_instructions),
            signature={"workload": _canonical(spec)},
            kind="workload",
        )
    factory = trace_factory or generate_trace
    return TraceSource(
        name, category, num_instructions, builder=lambda: factory(spec, num_instructions)
    )


def trace_digest(trace: Trace) -> str:
    """Content digest of a trace: name, category, and every record byte.

    Memoized on the trace (traces are immutable once generated), so sweeps
    that share a trace hash its record bytes exactly once.
    """
    cached = trace._digest_cache
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    # len(trace), not len(trace.instructions): identical by contract, but a
    # mapped trace answers the former from its header without decoding.
    digest.update(
        f"trace/{trace.name}\x00{trace.category}\x00{len(trace)}\x00".encode()
    )
    digest.update(records_bytes(trace))
    value = digest.hexdigest()
    trace._digest_cache = value
    return value


# ------------------------------------------------------------------ trace pool
class TracePool:
    """File-backed ``.lntr`` pool: each trace is synthesized exactly once.

    Pool entries are ordinary capture files (``{name}-{n}.lntr`` with the
    source's generation signature in the header), so they interoperate with
    ``scenarios generate`` captures.  A file whose header no longer matches
    the current signature — the scenario definition changed — is
    regenerated, as is an unreadable/truncated file; neither is ever
    silently replayed.
    """

    def __init__(self, directory: str, on_event: Optional[Callable[[str], None]] = None):
        self.directory = directory
        self._on_event = on_event

    def _note(self, message: str) -> None:
        if self._on_event is not None:
            self._on_event(message)

    def path_for(self, source: TraceSource) -> str:
        # Scenario entries keep the capture-file name scheme so they
        # interoperate with `scenarios generate`; legacy-workload entries
        # carry a `.wl` marker, because the spec2006 scenario port reuses
        # the legacy workload names and the two signatures must not fight
        # over one file.
        marker = ".wl" if source.kind == "workload" else ""
        return os.path.join(
            self.directory, f"{source.name}-{source.num_instructions}{marker}.lntr"
        )

    def _entry_current(self, path: str, source: TraceSource) -> bool:
        """True when a capture at ``path`` matches the source's signature."""
        try:
            meta = read_meta(path)
        except (OSError, TraceFormatError) as exc:
            self._note(f"{path}: unreadable capture ({exc}), regenerating")
            return False
        if (
            all(meta.get(key) == value for key, value in source.signature.items())
            and meta.get("instructions") == source.num_instructions
        ):
            return True
        self._note(f"{path}: stale capture (scenario changed), regenerating")
        return False

    def _save(self, path: str, source: TraceSource, trace: Trace,
              stats: Optional["ExecutionStats"]) -> None:
        try:
            os.makedirs(self.directory, exist_ok=True)
            tmp = f"{path}.tmp{os.getpid()}"
            save_trace(trace, tmp, extra_meta=source.signature)
            os.replace(tmp, path)
            faults.on_write("trace-pool", path)
            if stats is not None:
                stats.pool_saves += 1
        except OSError as exc:
            # An unwritable pool degrades to per-run synthesis, not a crash.
            warnings.warn(
                f"trace pool: could not save {path} ({exc})", RuntimeWarning, stacklevel=2
            )

    def fetch(self, source: TraceSource, stats: Optional["ExecutionStats"] = None) -> Trace:
        """Return the source's trace, replaying from the pool when possible.

        Pool replays are mmap-backed (:func:`~repro.scenarios.tracefile
        .map_trace`): the record bytes stay in the page cache — shared with
        every worker process mapping the same file — and decode lazily per
        process.  Bit-identical to an eager load by construction;
        ``REPRO_NO_MMAP=1`` forces the eager path.
        """
        if source.signature is None:
            return source.build()
        path = self.path_for(source)
        if os.path.exists(path) and self._entry_current(path, source):
            trace = map_trace(path)
            if stats is not None:
                stats.pool_loads += 1
            return trace
        trace = source.build()
        self._save(path, source, trace, stats)
        return trace

    def ensure(self, source: TraceSource, trace: Trace,
               stats: Optional["ExecutionStats"] = None) -> None:
        """Capture ``trace`` unless a current pool entry already exists.

        Used when a trace was materialized outside the pool (the in-memory
        memo, a caller-supplied trace): the file-backed capture must still
        appear, so later processes replay instead of re-synthesizing.
        """
        if source.signature is None:
            return
        path = self.path_for(source)
        if os.path.exists(path) and self._entry_current(path, source):
            return
        self._save(path, source, trace, stats)


# ---------------------------------------------------------------- result cache
def _result_to_row(result: RunResult) -> Dict[str, object]:
    """The JSON row shared by cache entries and journal lines."""
    return {
        "system": result.system,
        "workload": result.workload,
        "category": result.category,
        "ipc": result.ipc,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "activity": result.activity,
        "core_stats": result.core_stats,
    }


def _result_from_row(row: Dict[str, object]) -> RunResult:
    """Rebuild a :class:`RunResult`; raises on malformed rows."""
    return RunResult(
        system=str(row["system"]),
        workload=str(row["workload"]),
        category=str(row["category"]),
        ipc=row["ipc"],
        cycles=row["cycles"],
        instructions=row["instructions"],
        activity=dict(row["activity"]),
        core_stats=dict(row["core_stats"]),
    )


#: Checkpoint journals older than this belong to sweeps nobody will
#: resume; ``ResultCache.prune`` ages them out (override with the
#: ``REPRO_JOURNAL_MAX_AGE_DAYS`` environment variable).
JOURNAL_MAX_AGE_DAYS = 7.0


def _journal_max_age_days() -> float:
    env = os.environ.get("REPRO_JOURNAL_MAX_AGE_DAYS")
    if env:
        try:
            return float(env)
        except ValueError:
            warnings.warn(
                f"REPRO_JOURNAL_MAX_AGE_DAYS={env!r} is not a number; ignoring it",
                RuntimeWarning,
                stacklevel=2,
            )
    return JOURNAL_MAX_AGE_DAYS


def default_cache_dir() -> str:
    """``REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro-lnuca`` (or ~/.cache)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro-lnuca")


class ResultCache:
    """Content-addressed on-disk memo of :class:`RunResult`\\ s.

    Entries are small JSON files under ``<directory>/results``; the file
    name is the full cache key (see :func:`_cache_key`), so a lookup is one
    ``open``.  All IO failures degrade to a miss; corrupt entries are
    discarded with a :class:`RuntimeWarning`.

    The cache is size-capped: when ``limit_mb`` (default: the
    ``REPRO_CACHE_LIMIT_MB`` environment variable; unlimited when unset)
    is exceeded, the oldest-access entries are pruned until the cache fits
    again.  Hits refresh their entry's access time, so a hot working set
    survives pruning; surviving entries are byte-untouched and keep
    returning bit-identical results.
    """

    #: Pruning is amortised: the size audit walks the entry tree, so it
    #: runs at most once every this many writes (and on the first write).
    PRUNE_EVERY = 32

    def __init__(self, directory: str, limit_mb: Optional[float] = None):
        self.directory = directory
        self._write_failed = False
        if limit_mb is None:
            env = os.environ.get("REPRO_CACHE_LIMIT_MB")
            if env:
                try:
                    limit_mb = float(env)
                except ValueError:
                    warnings.warn(
                        f"REPRO_CACHE_LIMIT_MB={env!r} is not a number; ignoring it",
                        RuntimeWarning,
                        stacklevel=2,
                    )
        self.limit_bytes = None if limit_mb is None else int(limit_mb * 1024 * 1024)
        self._puts_since_prune: Optional[int] = None  # None = never audited

    @classmethod
    def default(cls, limit_mb: Optional[float] = None) -> "ResultCache":
        return cls(default_cache_dir(), limit_mb=limit_mb)

    def prune(self) -> int:
        """Evict oldest-access entries until the cache fits its size limit.

        Returns the number of entries deleted (0 when unlimited or within
        budget).  Entry age is the access time recorded on hits and
        writes; ties and IO races degrade gracefully (a file someone else
        already removed just counts as pruned).  Journals of abandoned
        sweeps are aged out alongside (:meth:`prune_stale_journals`);
        they are checkpoints, not entries, so they do not count toward
        the returned total.
        """
        self.prune_stale_journals()
        if self.limit_bytes is None:
            return 0
        root = os.path.join(self.directory, "results")
        entries: List[Tuple[float, int, str]] = []
        total = 0
        try:
            for dirpath, _, filenames in os.walk(root):
                for filename in filenames:
                    if not filename.endswith(".json"):
                        continue
                    path = os.path.join(dirpath, filename)
                    try:
                        info = os.stat(path)
                    except OSError:
                        continue
                    entries.append((info.st_mtime, info.st_size, path))
                    total += info.st_size
        except OSError:
            return 0
        deleted = 0
        if total > self.limit_bytes:
            entries.sort()
            for _, size, path in entries:
                try:
                    os.remove(path)
                except OSError:
                    pass
                total -= size
                deleted += 1
                if total <= self.limit_bytes:
                    break
        return deleted

    def prune_stale_journals(self, max_age_days: Optional[float] = None) -> int:
        """Delete checkpoint journals of abandoned sweeps; return the count.

        A live sweep fsyncs an append into its journal with every
        completed job, so a journal whose mtime is older than
        ``max_age_days`` (default :data:`JOURNAL_MAX_AGE_DAYS`, override
        with ``REPRO_JOURNAL_MAX_AGE_DAYS``) belongs to a sweep nobody
        resumed — the one case :class:`SweepJournal` itself can never
        clean up, because its ``delete`` only runs when the sweep
        completes.
        """
        if max_age_days is None:
            max_age_days = _journal_max_age_days()
        root = os.path.join(self.directory, "journals")
        cutoff = time.time() - max_age_days * 86400.0
        deleted = 0
        try:
            names = os.listdir(root)
        except OSError:
            return 0
        for name in names:
            if not name.endswith(".jsonl"):
                continue
            path = os.path.join(root, name)
            try:
                if os.stat(path).st_mtime < cutoff:
                    os.remove(path)
                    deleted += 1
            except OSError:
                pass
        return deleted

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, "results", key[:2], f"{key}.json")

    def get(self, key: str) -> Optional[RunResult]:
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("schema") != RESULT_SCHEMA:
                return None
            if self.limit_bytes is not None:
                try:
                    os.utime(path)  # LRU stamp: hits protect their entry
                except OSError:
                    pass
            return _result_from_row(payload["result"])
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError) as exc:
            warnings.warn(
                f"result cache: discarding corrupt entry {path} ({exc})",
                RuntimeWarning,
                stacklevel=2,
            )
            try:
                os.remove(path)
            except OSError:
                pass
            return None

    def put(self, key: str, result: RunResult, meta: Optional[Dict[str, object]] = None) -> None:
        """Write one entry.  ``meta`` (digest provenance: builder digest,
        trace digest, simulator version, run params) rides along in the
        entry so the SQLite result store can ETL cache entries without
        re-deriving their keys; lookups ignore it."""
        path = self._path(key)
        payload = {"schema": RESULT_SCHEMA, "result": _result_to_row(result)}
        if meta is not None:
            payload["meta"] = meta
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            tmp = f"{path}.tmp{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
                # Durability before visibility: entries double as sweep
                # checkpoints, so a crash right after os.replace must not
                # leave a half-written page behind.
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            if not self._write_failed:
                self._write_failed = True
                warnings.warn(
                    f"result cache: disabled writes ({exc})", RuntimeWarning, stacklevel=2
                )
            return
        faults.on_write("result-cache", path)
        # Amortised even without a size limit: prune() then only ages out
        # abandoned journals, which is one directory listing.
        count = self._puts_since_prune
        if count is None or count + 1 >= self.PRUNE_EVERY:
            self.prune()
            self._puts_since_prune = 0
        else:
            self._puts_since_prune = count + 1

    def verify(self, delete: bool = True) -> Dict[str, int]:
        """Scan the cache directory for corrupt, truncated, or stale files.

        Every entry is parsed and rebuilt exactly the way a lookup would
        rebuild it; entries that fail (truncated JSON, wrong schema,
        mistyped fields) are *corrupt* and — with ``delete``, the default —
        removed, as are ``.tmp`` leftovers of crashed writers.  Checkpoint
        journals are audited too: ``journals`` counts them and
        ``stale_journals`` the ones past the abandonment age (deleted
        with ``delete``).  Returns ``{"checked", "corrupt", "stale_tmp",
        "journals", "stale_journals", "deleted"}`` counts; each corrupt
        entry is also reported through a :class:`RuntimeWarning`.
        Surviving entries are byte-untouched, so verification never
        changes what a warm sweep replays.
        """
        root = os.path.join(self.directory, "results")
        report = {
            "checked": 0, "corrupt": 0, "stale_tmp": 0,
            "journals": 0, "stale_journals": 0, "deleted": 0,
        }

        def remove(path: str) -> None:
            if delete:
                try:
                    os.remove(path)
                    report["deleted"] += 1
                except OSError:
                    pass

        for dirpath, _, filenames in os.walk(root):
            for filename in filenames:
                path = os.path.join(dirpath, filename)
                if ".tmp" in filename:
                    report["stale_tmp"] += 1
                    remove(path)
                    continue
                if not filename.endswith(".json"):
                    continue
                report["checked"] += 1
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        payload = json.load(handle)
                    if payload.get("schema") != RESULT_SCHEMA:
                        raise ValueError(f"schema {payload.get('schema')!r}")
                    _result_from_row(payload["result"])
                except (OSError, ValueError, KeyError, TypeError) as exc:
                    report["corrupt"] += 1
                    warnings.warn(
                        f"cache verify: corrupt entry {path} ({exc})",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    remove(path)
        cutoff = time.time() - _journal_max_age_days() * 86400.0
        journal_root = os.path.join(self.directory, "journals")
        try:
            journal_names = os.listdir(journal_root)
        except OSError:
            journal_names = []
        for name in journal_names:
            if not name.endswith(".jsonl"):
                continue
            report["journals"] += 1
            path = os.path.join(journal_root, name)
            try:
                stale = os.stat(path).st_mtime < cutoff
            except OSError:
                continue
            if stale:
                report["stale_journals"] += 1
                remove(path)
        return report


# ---------------------------------------------------------------- sweep journal
class SweepJournal:
    """Append-only, fsync'd checkpoint of one sweep's completed jobs.

    One JSONL file per sweep (named by the digest of the sweep's ordered
    cache keys) under ``<cache dir>/journals``.  Every committed result
    appends one line and is fsync'd immediately, so even a SIGKILL'd
    sweep loses at most the job in flight.  On the next run of the same
    sweep, journal rows restore completed results that the cache no
    longer holds (pruned, corrupted, or wiped); a sweep that completes
    cleanly deletes its journal.  Corrupt or truncated lines — the
    expected tail of a crash — are skipped, never trusted.
    """

    def __init__(self, path: str):
        self.path = path
        self._handle = None
        self._write_failed = False

    @classmethod
    def for_plan(cls, cache_directory: str, keys: Iterable[str]) -> "SweepJournal":
        digest = hashlib.sha256(
            json.dumps(list(keys)).encode("utf-8")
        ).hexdigest()
        return cls(os.path.join(cache_directory, "journals", f"{digest}.jsonl"))

    def load(self) -> Dict[str, Dict[str, object]]:
        """Rows of a previous interrupted run, keyed by cache key."""
        rows: Dict[str, Dict[str, object]] = {}
        skipped = 0
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                        if entry.get("schema") != RESULT_SCHEMA:
                            raise ValueError("schema mismatch")
                        _result_from_row(entry["result"])  # validate now
                        rows[entry["key"]] = entry["result"]
                    except (ValueError, KeyError, TypeError):
                        skipped += 1
        except FileNotFoundError:
            return {}
        except OSError as exc:
            warnings.warn(
                f"sweep journal: unreadable ({exc}); resuming from cache only",
                RuntimeWarning,
                stacklevel=2,
            )
            return {}
        if skipped:
            warnings.warn(
                f"sweep journal: skipped {skipped} corrupt line(s) in {self.path} "
                "(interrupted write); the jobs re-simulate",
                RuntimeWarning,
                stacklevel=2,
            )
        return rows

    def append(self, key: str, result: RunResult,
               meta: Optional[Dict[str, object]] = None) -> None:
        if self._write_failed:
            return
        try:
            if self._handle is None:
                os.makedirs(os.path.dirname(self.path), exist_ok=True)
                self._handle = open(self.path, "a", encoding="utf-8")
            entry: Dict[str, object] = {
                "schema": RESULT_SCHEMA, "key": key, "result": _result_to_row(result),
            }
            if meta is not None:
                entry["meta"] = meta
            line = json.dumps(entry, sort_keys=True)
            self._handle.write(line + "\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except OSError as exc:
            # An unwritable journal costs resumability, not correctness.
            self._write_failed = True
            warnings.warn(
                f"sweep journal: disabled ({exc})", RuntimeWarning, stacklevel=2
            )
            return
        faults.on_write("journal", self.path)

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None

    def delete(self) -> None:
        """The sweep completed: the checkpoint has served its purpose."""
        self.close()
        try:
            os.remove(self.path)
        except OSError:
            pass


def _core_config_digest(core_config: Optional[CoreConfig]) -> str:
    if core_config is None:
        return "default"
    return hashlib.sha256(
        json.dumps(_canonical(core_config), sort_keys=True).encode("utf-8")
    ).hexdigest()


def _cache_key(
    job: "JobSpec",
    builder_digest: str,
    trace_content_digest: str,
    core_digest: str,
    version: str,
) -> str:
    """The content address of one job's result.

    Deliberately excludes the job's display label (``job.system``): two
    sweeps that run the identical architecture on the identical trace share
    the entry, and the label is re-applied on lookup.
    """
    payload = json.dumps(
        {
            "schema": RESULT_SCHEMA,
            "simulator": version,
            "builder": builder_digest,
            "trace": trace_content_digest,
            "core": core_digest,
            "instructions": job.num_instructions,
            "prewarm": job.prewarm,
            "mode": job.mode,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ------------------------------------------------------------------- the plan
@dataclass(frozen=True)
class JobSpec:
    """One hashable (system, workload) simulation of a plan."""

    system: str  #: result label (``RunResult.system``)
    builder: str  #: key into ``RunPlan.builders``
    trace: str  #: key into ``RunPlan.traces``
    num_instructions: int
    prewarm: bool = True
    mode: str = "event"


@dataclass
class RunPlan:
    """A compiled sweep: jobs over builder and trace registries."""

    jobs: List[JobSpec]
    builders: Dict[str, BuilderSpec]
    traces: Dict[str, TraceSource]
    core_config: Optional[CoreConfig] = None


def compile_sweep(
    system_builders: Dict[str, Callable],
    specs: Iterable,
    num_instructions: int,
    core_config: Optional[CoreConfig] = None,
    prewarm: bool = True,
    mode: str = "event",
    trace_factory: Optional[Callable] = None,
    traces: Optional[Dict[str, Trace]] = None,
) -> RunPlan:
    """Compile a classic (builders x specs) sweep into a :class:`RunPlan`.

    Accepts exactly what :func:`~repro.sim.runner.run_suite` accepts:
    builders may be :class:`~repro.sim.configs.BuilderSpec`\\ s (digestable,
    cacheable) or plain callables (ad hoc, still executable); ``traces``
    short-circuits generation for the named workloads.  Job order is the
    historical sweep order — systems outer, specs inner.
    """
    specs = list(specs)
    pregenerated = dict(traces or {})
    builders = {
        name: builder if isinstance(builder, BuilderSpec)
        else BuilderSpec(key=name, factory=builder)
        for name, builder in system_builders.items()
    }
    sources = {
        spec.name: trace_source_for(
            spec, num_instructions, trace_factory, pregenerated.get(spec.name)
        )
        for spec in specs
    }
    jobs = [
        JobSpec(
            system=system_name,
            builder=system_name,
            trace=spec.name,
            num_instructions=num_instructions,
            prewarm=prewarm,
            mode=mode,
        )
        for system_name in builders
        for spec in specs
    ]
    return RunPlan(jobs=jobs, builders=builders, traces=sources, core_config=core_config)


# ------------------------------------------------------------------ snapshots
class SnapshotStore:
    """Content-addressed on-disk store of prewarm snapshot blobs.

    The disk tier under the in-process ``_SNAPSHOT_BLOBS`` L1.  Blobs live
    as ``<directory>/<aa>/<digest>.blob`` files, where the digest is the
    sha256 of ``snapshot/{simulator version}/{builder digest}/{trace
    digest}`` — the simulator version is part of the address, so a code
    change can never serve a stale hierarchy against the clone-equals-fresh
    contract.  Any process (persistent pool workers, concurrent service
    sweeps, tomorrow's run) hits snapshots produced by any other: a fresh
    worker re-prewarms nothing a sibling already prewarmed.

    Writes follow the result cache's tmp+fsync+``os.replace`` discipline
    and fire the ``snapshot-store`` fault site.  IO failures degrade to a
    miss; corrupt blobs are detected on unpickle by the consumer
    (:func:`_prewarmed_system`), discarded, and rebuilt.  Size-capped LRU
    pruning mirrors :class:`ResultCache`: ``REPRO_SNAPSHOT_LIMIT_MB``,
    falling back to the shared ``REPRO_CACHE_LIMIT_MB``.
    """

    #: Amortisation: the size audit walks the blob tree, so it runs at
    #: most once every this many writes (and on the first write).
    PRUNE_EVERY = 16

    def __init__(self, directory: str, version: Optional[str] = None,
                 limit_mb: Optional[float] = None):
        self.directory = directory
        self.version = version if version else "unversioned"
        self._write_failed = False
        if limit_mb is None:
            for knob in ("REPRO_SNAPSHOT_LIMIT_MB", "REPRO_CACHE_LIMIT_MB"):
                env = os.environ.get(knob)
                if not env:
                    continue
                try:
                    limit_mb = float(env)
                except ValueError:
                    warnings.warn(
                        f"{knob}={env!r} is not a number; ignoring it",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    continue
                break
        self.limit_bytes = None if limit_mb is None else int(limit_mb * 1024 * 1024)
        self._puts_since_prune: Optional[int] = None  # None = never audited

    def _path(self, key: Tuple[str, str]) -> str:
        digest = hashlib.sha256(
            f"snapshot/{self.version}/{key[0]}/{key[1]}".encode("utf-8")
        ).hexdigest()
        return os.path.join(self.directory, digest[:2], f"{digest}.blob")

    def get(self, key: Tuple[str, str]) -> Optional[bytes]:
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            return None
        if self.limit_bytes is not None:
            try:
                os.utime(path)  # LRU stamp: hits protect their blob
            except OSError:
                pass
        return blob

    def put(self, key: Tuple[str, str], blob: bytes) -> None:
        path = self._path(key)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            tmp = f"{path}.tmp{os.getpid()}"
            with open(tmp, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            if not self._write_failed:
                self._write_failed = True
                warnings.warn(
                    f"snapshot store: disabled writes ({exc})",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return
        faults.on_write("snapshot-store", path)
        count = self._puts_since_prune
        if count is None or count + 1 >= self.PRUNE_EVERY:
            self.prune()
            self._puts_since_prune = 0
        else:
            self._puts_since_prune = count + 1

    def discard(self, key: Tuple[str, str]) -> None:
        try:
            os.remove(self._path(key))
        except OSError:
            pass

    def prune(self) -> int:
        """Evict oldest-access blobs until the store fits its size limit."""
        if self.limit_bytes is None:
            return 0
        entries: List[Tuple[float, int, str]] = []
        total = 0
        try:
            for dirpath, _, filenames in os.walk(self.directory):
                for filename in filenames:
                    if not filename.endswith(".blob"):
                        continue
                    path = os.path.join(dirpath, filename)
                    try:
                        info = os.stat(path)
                    except OSError:
                        continue
                    entries.append((info.st_mtime, info.st_size, path))
                    total += info.st_size
        except OSError:
            return 0
        deleted = 0
        if total > self.limit_bytes:
            entries.sort()
            for _, size, path in entries:
                try:
                    os.remove(path)
                except OSError:
                    pass
                total -= size
                deleted += 1
                if total <= self.limit_bytes:
                    break
        return deleted

    def verify(self, delete: bool = True) -> Dict[str, int]:
        """Scan the blob tree for corrupt blobs and stale tmp files.

        A blob is *corrupt* when it does not unpickle — exactly the test a
        consumer would apply — and is removed with ``delete`` (the default),
        as are ``.tmp`` leftovers of crashed writers.  Returns
        ``{"checked", "corrupt", "stale_tmp", "deleted"}`` counts; healthy
        blobs are byte-untouched.
        """
        report = {"checked": 0, "corrupt": 0, "stale_tmp": 0, "deleted": 0}

        def remove(path: str) -> None:
            if delete:
                try:
                    os.remove(path)
                    report["deleted"] += 1
                except OSError:
                    pass

        for dirpath, _, filenames in os.walk(self.directory):
            for filename in filenames:
                path = os.path.join(dirpath, filename)
                if ".tmp" in filename:
                    report["stale_tmp"] += 1
                    remove(path)
                    continue
                if not filename.endswith(".blob"):
                    continue
                report["checked"] += 1
                try:
                    with open(path, "rb") as handle:
                        pickle.loads(handle.read())
                except Exception as exc:
                    report["corrupt"] += 1
                    warnings.warn(
                        f"snapshot store: corrupt blob {path} ({exc})",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    remove(path)
        return report


#: Process-global prewarm snapshot L1: (builder digest, trace digest) ->
#: pickled functionally-prewarmed hierarchy.  Keyed by content digests, so
#: sharing across sweeps and experiments is always sound; bounded FIFO so a
#: long session cannot grow without limit.  Backed by the on-disk
#: :class:`SnapshotStore` when a result cache is active.
_SNAPSHOT_BLOBS: "OrderedDict[Tuple[str, str], bytes]" = OrderedDict()
_SNAPSHOT_CAP = 64

#: Builders whose systems failed to pickle; they fall back to the direct
#: build-and-prewarm path permanently (per process).  Holds the factory
#: objects themselves (identity semantics) — keeping them alive on purpose,
#: so a recycled id() can never misclassify an unrelated builder.
_UNPICKLABLE_BUILDERS: set = set()


def _trim_snapshot_l1() -> None:
    while len(_SNAPSHOT_BLOBS) > _SNAPSHOT_CAP:
        _SNAPSHOT_BLOBS.popitem(last=False)


def _prewarmed_system(
    builder: BuilderSpec,
    trace: Trace,
    snapshot_key: Optional[Tuple[str, str]],
    local_blobs: Dict[Tuple[str, str], bytes],
    stats: "ExecutionStats",
    disk_store: Optional[SnapshotStore] = None,
):
    """A functionally-prewarmed system, cloned from a snapshot when possible.

    The snapshot is taken right after ``prewarm`` — before any timed state
    exists — so the blob preserves exactly the state a fresh
    build-and-prewarm produces.  The job that *creates* a snapshot runs on
    the pristine original (no unpickle); every later job of the same
    (builder, trace) pair runs on an unpickled clone.  Clone-equals-fresh
    is enforced by the differential tests in ``tests/test_plan.py``.

    The lookup is tiered: in-process L1 (``_SNAPSHOT_BLOBS``) first, then
    ``disk_store`` (the on-disk :class:`SnapshotStore`, digestable builders
    only) — a disk hit counts in ``snapshot_disk_hits``, promotes the blob
    into L1, and still runs on an unpickled clone; a build writes through
    to both tiers.  A corrupt blob from either tier is discarded from
    both, rebuilt fresh, and never trusted.
    """
    if snapshot_key is None or builder.factory in _UNPICKLABLE_BUILDERS:
        system = builder.factory()
        system.prewarm(trace.resident_addresses())
        return system
    store = _SNAPSHOT_BLOBS if builder.digest() is not None else local_blobs
    disk = disk_store if store is _SNAPSHOT_BLOBS else None
    blob = store.get(snapshot_key)
    from_disk = False
    if blob is None and disk is not None:
        blob = disk.get(snapshot_key)
        from_disk = blob is not None
    if blob is None:
        system = builder.factory()
        system.prewarm(trace.resident_addresses())
        try:
            blob = pickle.dumps(system, pickle.HIGHEST_PROTOCOL)
        except (pickle.PicklingError, TypeError, AttributeError):
            _UNPICKLABLE_BUILDERS.add(builder.factory)
            return system
        blob = faults.mangle_blob(blob)
        store[snapshot_key] = blob
        if disk is not None:
            disk.put(snapshot_key, blob)
        stats.snapshot_builds += 1
        if store is _SNAPSHOT_BLOBS:
            _trim_snapshot_l1()
        return system
    try:
        system = pickle.loads(blob)
    except Exception as exc:
        # A corrupt blob (bit rot, injected fault) degrades to the direct
        # build-and-prewarm path and is replaced by a fresh snapshot —
        # never trusted, never fatal.
        store.pop(snapshot_key, None)
        if disk is not None:
            disk.discard(snapshot_key)
        warnings.warn(
            f"prewarm snapshot: discarding corrupt blob ({exc}); rebuilding",
            RuntimeWarning,
            stacklevel=2,
        )
        system = builder.factory()
        system.prewarm(trace.resident_addresses())
        try:
            fresh = pickle.dumps(system, pickle.HIGHEST_PROTOCOL)
            store[snapshot_key] = fresh
            if disk is not None:
                disk.put(snapshot_key, fresh)
            stats.snapshot_builds += 1
        except (pickle.PicklingError, TypeError, AttributeError):
            _UNPICKLABLE_BUILDERS.add(builder.factory)
        return system
    if from_disk:
        stats.snapshot_disk_hits += 1
        store[snapshot_key] = blob
        if store is _SNAPSHOT_BLOBS:
            _trim_snapshot_l1()
    stats.snapshot_clones += 1
    return system


# ------------------------------------------------------------------- executor
@dataclass
class ExecutionStats:
    """What one :func:`execute` call actually did.

    ``simulated`` counts jobs that went to simulation (a retried job
    counts once — fault runs and clean runs report identical counts);
    ``retries`` / ``timeouts`` / ``quarantined`` count supervision
    events; ``resumed_from_journal`` counts results restored from an
    interrupted sweep's checkpoint; ``store_hits`` counts results served
    by the SQLite result store after a cache miss; ``inflight_hits``
    counts results adopted from an identical job that another thread of
    this process was already simulating; ``workers_effective`` records
    the peak number of processes that actually executed jobs (1 when
    in-process), so reports show what really ran.  ``pool_reused`` counts
    worker acquisitions served by an already-warm persistent-pool worker
    (instead of a fork); ``snapshot_disk_hits`` counts prewarm snapshots
    served by the on-disk :class:`SnapshotStore` — redundant prewarm
    across processes shows up as this number staying at zero.
    """

    jobs: int = 0
    simulated: int = 0
    cached: int = 0
    store_hits: int = 0
    inflight_hits: int = 0
    snapshot_builds: int = 0
    snapshot_clones: int = 0
    snapshot_disk_hits: int = 0
    pool_loads: int = 0
    pool_saves: int = 0
    pool_reused: int = 0
    retries: int = 0
    timeouts: int = 0
    quarantined: int = 0
    resumed_from_journal: int = 0
    workers_effective: int = 0
    #: Hierarchy span-engine engagement, summed over every simulated job:
    #: cycles fast-forwarded analytically and schedules replayed from the
    #: memo.  Zero under ``REPRO_NO_HIER_BATCH=1`` (the kill switch) and
    #: for purely cached executions; results are bit-identical either way,
    #: so these are engagement diagnostics, not model statistics.
    hier_fast_forwarded_cycles: int = 0
    hier_schedule_replays: int = 0
    #: Persistent schedule-store traffic (:mod:`repro.sim.schedstore`):
    #: blob loads that restored span/hier schedules built by another
    #: process, and blob publishes of schedules this execution built.
    #: Zero under ``REPRO_NO_SCHED_STORE=1``; results are bit-identical
    #: either way, so these too are engagement diagnostics.
    sched_store_hits: int = 0
    sched_store_builds: int = 0

    def add(self, other: "ExecutionStats") -> None:
        self.jobs += other.jobs
        self.simulated += other.simulated
        self.cached += other.cached
        self.store_hits += other.store_hits
        self.inflight_hits += other.inflight_hits
        self.snapshot_builds += other.snapshot_builds
        self.snapshot_clones += other.snapshot_clones
        self.snapshot_disk_hits += other.snapshot_disk_hits
        self.pool_loads += other.pool_loads
        self.pool_saves += other.pool_saves
        self.pool_reused += other.pool_reused
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.quarantined += other.quarantined
        self.resumed_from_journal += other.resumed_from_journal
        self.hier_fast_forwarded_cycles += other.hier_fast_forwarded_cycles
        self.hier_schedule_replays += other.hier_schedule_replays
        self.sched_store_hits += other.sched_store_hits
        self.sched_store_builds += other.sched_store_builds
        self.workers_effective = max(self.workers_effective, other.workers_effective)

    def describe(self) -> str:
        # New counters append at the end: CI and scripts grep for the
        # existing "token=value " shapes and must keep matching.
        return (
            f"jobs={self.jobs} simulated={self.simulated} cached={self.cached} "
            f"snapshot_clones={self.snapshot_clones} pool_loads={self.pool_loads} "
            f"workers_effective={self.workers_effective} retries={self.retries} "
            f"timeouts={self.timeouts} quarantined={self.quarantined} "
            f"resumed_from_journal={self.resumed_from_journal} "
            f"store_hits={self.store_hits} inflight_hits={self.inflight_hits} "
            f"pool_reused={self.pool_reused} snapshot_disk_hits={self.snapshot_disk_hits} "
            f"hier_fast_forwarded_cycles={self.hier_fast_forwarded_cycles} "
            f"hier_schedule_replays={self.hier_schedule_replays} "
            f"sched_store_hits={self.sched_store_hits} "
            f"sched_store_builds={self.sched_store_builds}"
        )

    def degraded(self) -> bool:
        """True when this execution needed any fault-recovery machinery."""
        return bool(
            self.retries or self.timeouts or self.quarantined or self.resumed_from_journal
        )


# --------------------------------------------------------------- supervision
@dataclass
class SupervisionPolicy:
    """How the supervised executor treats failing jobs.

    ``job_timeout`` is the per-job wall-clock limit in seconds (``None``
    derives one from the job's instruction budget); ``max_retries``
    bounds re-dispatches per job after crashes, timeouts, garbage
    replies, and transient errors; ``backoff_base`` seeds the
    exponential backoff (``base * 2**(attempt-1)``) before each retry;
    ``strict`` turns a quarantined job into an
    :class:`~repro.common.errors.ExecutionError` instead of a
    :class:`JobFailure` record.  A deterministic model error
    (:class:`~repro.common.errors.SimulationError` /
    :class:`~repro.common.errors.ConfigurationError`) quarantines
    immediately — re-running it would reproduce it.
    """

    job_timeout: Optional[float] = None
    max_retries: int = 2
    backoff_base: float = 0.05
    strict: bool = False

    def timeout_for(self, num_instructions: int) -> float:
        """Wall-clock budget of one job: generous, but bounded.

        Scaled on the instruction budget (the dense-mode worst case is
        hundreds of Python-level ticks per instruction), floored so tiny
        test jobs on loaded machines never false-trip.
        """
        if self.job_timeout is not None:
            return self.job_timeout
        return 30.0 + num_instructions * 0.01


def _effective_policy(policy: Optional[SupervisionPolicy]) -> SupervisionPolicy:
    """The caller's policy with any fault-plan overrides applied (tests)."""
    base = policy if policy is not None else SupervisionPolicy()
    overrides = {
        key: value
        for key, value in faults.policy_overrides().items()
        if key in ("job_timeout", "max_retries", "backoff_base", "strict")
    }
    return replace(base, **overrides) if overrides else base


@dataclass
class JobFailure:
    """A quarantined job: the sweep completed, this job did not."""

    index: int  #: position in ``RunPlan.jobs`` (and the results list)
    job: JobSpec
    reason: str  #: "crash" | "timeout" | "garbage" | "error"
    attempts: int
    detail: str = ""

    def describe(self) -> str:
        return (
            f"{self.job.system}/{self.job.trace}: {self.reason} "
            f"after {self.attempts} attempt(s)"
            + (f" ({self.detail})" if self.detail else "")
        )


@dataclass
class PlanRun:
    """Results of an executed plan (job order), plus what the executor did.

    ``results`` holds ``None`` at the index of every quarantined job;
    ``failures`` carries their :class:`JobFailure` records (empty for a
    healthy sweep, always empty under ``strict`` — that raises instead).
    """

    results: List[RunResult]
    stats: ExecutionStats = field(default_factory=ExecutionStats)
    failures: List[JobFailure] = field(default_factory=list)


#: Stats sinks for nested :func:`execute` calls (``collect_stats``).
_COLLECTORS: List[ExecutionStats] = []


@contextmanager
def collect_stats():
    """Aggregate the stats of every :func:`execute` call inside the block.

    Used by the CLI to report, across a whole ``report`` invocation, how
    many jobs simulated versus hit the cache — the two-pass CI smoke
    asserts ``simulated=0`` on the warm pass.
    """
    stats = ExecutionStats()
    _COLLECTORS.append(stats)
    try:
        yield stats
    finally:
        _COLLECTORS.remove(stats)


# ------------------------------------------------------------ in-flight dedup
class _InflightEntry:
    """One job digest currently being simulated somewhere in this process."""

    __slots__ = ("event", "result")

    def __init__(self):
        self.event = threading.Event()
        self.result: Optional[RunResult] = None


class InflightRegistry:
    """Process-wide registry of cache keys whose simulation is in flight.

    Concurrent :func:`execute` calls (the service's sweep threads) that
    contain the identical job — same builder digest, trace digest,
    simulator version, run params — must not simulate it twice.  The
    first caller to :meth:`claim` a key owns it and must
    :meth:`resolve` (or :meth:`abandon`) it; every other caller gets the
    owner's entry back and waits on its event instead of simulating.
    An abandoned key (owner raised, or quarantined the job) wakes the
    waiters with ``result=None`` and they fall back to simulating
    themselves — dedup is an optimisation, never a correctness
    dependency.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._entries: Dict[str, _InflightEntry] = {}

    def claim(self, key: str) -> Optional[_InflightEntry]:
        """``None``: the caller now owns ``key`` (and must resolve it);
        an entry: someone else owns it — wait on ``entry.event``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                return entry
            self._entries[key] = _InflightEntry()
            return None

    def resolve(self, key: str, result: Optional[RunResult]) -> None:
        with self._lock:
            entry = self._entries.pop(key, None)
        if entry is not None:
            entry.result = result
            entry.event.set()

    def abandon(self, key: str) -> None:
        self.resolve(key, None)


#: The process singleton :func:`execute` registers in-flight jobs with.
_INFLIGHT = InflightRegistry()


def _copy_result(result: RunResult) -> RunResult:
    """A deep, independent copy (results are mutable: labels get rewritten)."""
    return _result_from_row(_result_to_row(result))


# ----------------------------------------------------- module-default hooks
#: Default result store / progress callback for :func:`execute` when the
#: caller passes none — set once by the CLI (``--store`` / ``--progress``)
#: instead of threading new parameters through every experiment signature.
_DEFAULT_STORE = None
_DEFAULT_PROGRESS: Optional[Callable[[int, int, ExecutionStats], None]] = None


@contextmanager
def use_store(store):
    """Make ``store`` the default :class:`~repro.sim.store.ResultStore`
    for every :func:`execute` call inside the block (``None`` disables)."""
    global _DEFAULT_STORE
    previous = _DEFAULT_STORE
    _DEFAULT_STORE = store
    try:
        yield store
    finally:
        _DEFAULT_STORE = previous


def set_default_progress(
    callback: Optional[Callable[[int, int, ExecutionStats], None]],
) -> None:
    """Install a process-default ``on_progress`` callback (``None`` clears).

    The callback receives ``(done, total, stats)`` after every job lands
    and once more when the sweep finishes, so a renderer can terminate
    its line even when jobs were quarantined.
    """
    global _DEFAULT_PROGRESS
    _DEFAULT_PROGRESS = callback


_DIRTY_WARNED = False


def _warn_cache_bypassed(version: str) -> None:
    global _DIRTY_WARNED
    if not _DIRTY_WARNED:
        _DIRTY_WARNED = True
        warnings.warn(
            f"result cache bypassed: simulator version is {version!r} "
            "(commit your changes or set REPRO_SIM_VERSION to re-enable caching)",
            RuntimeWarning,
            stacklevel=3,
        )


def _run_job(
    plan: RunPlan,
    job: JobSpec,
    trace: Trace,
    snapshot_key: Optional[Tuple[str, str]],
    local_blobs: Dict,
    stats: ExecutionStats,
    disk_store: Optional[SnapshotStore] = None,
    sched_store: Optional[schedstore.ScheduleStore] = None,
    sched_key: Optional[Tuple[str, str]] = None,
) -> RunResult:
    """Simulate one job (the only place a core is ever constructed)."""
    builder = plan.builders[job.builder]
    source = plan.traces[job.trace]
    if sched_store is not None and sched_key is not None:
        # Restore any schedules a sibling process already built for this
        # (trace, config) before the core decodes: the first run then
        # starts at warm-replay speed instead of rebuilding the memos.
        stats.sched_store_hits += schedstore.restore_schedules(
            sched_store, trace, sched_key[0], sched_key[1]
        )
    if job.prewarm:
        system = _prewarmed_system(
            builder, trace, snapshot_key, local_blobs, stats, disk_store
        )
    else:
        system = builder.factory()
    core = OoOCore(trace, system, config=plan.core_config)
    summary = simulate(core, mode=job.mode)
    stats.hier_fast_forwarded_cycles += core.hier_ff_cycles
    stats.hier_schedule_replays += core.hier_replays
    if sched_store is not None and sched_key is not None:
        stats.sched_store_builds += schedstore.publish_schedules(
            sched_store, trace, sched_key[0], sched_key[1]
        )
    return RunResult(
        system=job.system,
        workload=source.name,
        category=source.category,
        ipc=summary["ipc"],
        cycles=summary["cycles"],
        instructions=summary["instructions"],
        activity=system.activity(),
        core_stats=core.stats.as_dict(),
    )


class _JobError:
    """Picklable report of an exception raised inside a worker.

    ``deterministic`` marks model errors (:class:`SimulationError`,
    :class:`ConfigurationError`): re-running those reproduces them, so
    the supervisor quarantines immediately instead of burning retries.
    """

    __slots__ = ("exc_type", "detail", "deterministic")

    def __init__(self, exc_type: str, detail: str, deterministic: bool):
        self.exc_type = exc_type
        self.detail = detail
        self.deterministic = deterministic

    def __getstate__(self):
        return (self.exc_type, self.detail, self.deterministic)

    def __setstate__(self, state):
        self.exc_type, self.detail, self.deterministic = state


class _TraceTransportError(RuntimeError):
    """A pool worker could not reconstruct a job's trace from its pool-file
    reference (file vanished, changed, or failed its digest check).  The
    supervisor retries the job with the record bytes shipped inline."""


#: Per-worker decoded-trace cache entries retained (keyed by content).
_WORKER_TRACE_CAP = 8


def _payload_trace(payload: Dict[str, object], cache: "OrderedDict") -> Trace:
    """Materialize a job payload's trace inside a pool worker.

    ``("path", path, digest, ...)`` references mmap the shared pool file
    and verify its content digest against the supervisor's — a mismatch
    (stale or rewritten file) raises :class:`_TraceTransportError`, and
    the supervisor falls back to shipping bytes.  ``("bytes", name,
    category, blob)`` references rebuild the trace from its canonical
    record bytes.  Either way the worker's trace is bit-identical to the
    supervisor's.  Traces are cached per worker, keyed by content, so a
    persistent worker decodes each trace once across jobs and sweeps.
    """
    ref = payload["trace_ref"]
    if ref[0] == "path":
        _, path, digest, _name, _category = ref
        key = ("path", digest)
        trace = cache.get(key)
        if trace is not None:
            cache.move_to_end(key)
            return trace
        try:
            trace = map_trace(path)
        except (OSError, TraceFormatError) as exc:
            raise _TraceTransportError(f"pool file {path}: {exc}") from None
        if trace_digest(trace) != digest:
            raise _TraceTransportError(
                f"pool file {path}: content digest mismatch (stale or rewritten)"
            )
    else:
        _, name, category, blob = ref
        key = ("bytes", hashlib.sha256(blob).hexdigest())
        trace = cache.get(key)
        if trace is not None:
            cache.move_to_end(key)
            return trace
        trace = trace_from_records(name, category, blob)
    cache[key] = trace
    while len(cache) > _WORKER_TRACE_CAP:
        _, evicted = cache.popitem(last=False)
        # Last chance before the decoded memos are garbage-collected:
        # flush any schedules built since their last disk sync.
        schedstore.publish_pending(evicted)
    return trace


def _run_payload(
    payload: Dict[str, object],
    trace_cache: "OrderedDict",
    store_cache: Dict[Tuple[str, str], SnapshotStore],
    sched_cache: Dict[Tuple[str, str], schedstore.ScheduleStore],
) -> Tuple[RunResult, Tuple[int, int, int]]:
    """Run one shipped job inside a pool worker; returns (result, counters).

    The counters tuple is this job's ``(snapshot_builds, snapshot_clones,
    snapshot_disk_hits, hier_fast_forwarded_cycles, hier_schedule_replays,
    sched_store_hits, sched_store_builds)`` delta — per-worker stats die
    with the worker, so each reply carries its own delta back to the
    supervisor.
    """
    builder: BuilderSpec = payload["builder"]
    trace = _payload_trace(payload, trace_cache)
    disk_store = None
    if payload.get("snapshot_dir"):
        store_key = (payload["snapshot_dir"], payload["snapshot_version"])
        disk_store = store_cache.get(store_key)
        if disk_store is None:
            disk_store = SnapshotStore(store_key[0], version=store_key[1])
            store_cache[store_key] = disk_store
    # Schedule-store participation is re-checked worker-side (symmetric
    # kill switch: the env may differ from the supervisor's fork-time
    # state, and load/publish must disable together either way).
    sched_store = None
    sched_key = payload.get("sched_key")
    if payload.get("sched_dir") and sched_key is not None and schedstore.store_enabled():
        sched_store_key = (payload["sched_dir"], payload["sched_version"])
        sched_store = sched_cache.get(sched_store_key)
        if sched_store is None:
            sched_store = schedstore.ScheduleStore(
                sched_store_key[0], version=sched_store_key[1]
            )
            sched_cache[sched_store_key] = sched_store
    sched_hits = sched_builds = 0
    if sched_store is not None:
        sched_hits = schedstore.restore_schedules(
            sched_store, trace, sched_key[0], sched_key[1]
        )
    scratch = ExecutionStats()
    if payload["prewarm"]:
        system = _prewarmed_system(
            builder, trace, payload["snapshot_key"], {}, scratch, disk_store
        )
    else:
        system = builder.factory()
    core = OoOCore(trace, system, config=payload["core_config"])
    summary = simulate(core, mode=payload["mode"])
    result = RunResult(
        system=payload["system"],
        workload=payload["workload"],
        category=payload["category"],
        ipc=summary["ipc"],
        cycles=summary["cycles"],
        instructions=summary["instructions"],
        activity=system.activity(),
        core_stats=core.stats.as_dict(),
    )
    if sched_store is not None:
        sched_builds = schedstore.publish_schedules(
            sched_store, trace, sched_key[0], sched_key[1]
        )
    return result, (
        scratch.snapshot_builds,
        scratch.snapshot_clones,
        scratch.snapshot_disk_hits,
        core.hier_ff_cycles,
        core.hier_replays,
        sched_hits,
        sched_builds,
    )


def _pool_worker(conn) -> None:
    """One persistent pool worker: receive a job payload, run it, reply.

    Jobs arrive as self-contained payload dicts (picklable builder spec,
    trace reference, snapshot addressing, pre-matched fault action) — the
    worker outlives the ``execute()`` call that forked it and serves any
    later sweep, so nothing may depend on fork-time sweep state.  Replies
    ``(index, RunResult | _JobError, (builds, clones, disk_hits, ff, replays,
    sched_hits, sched_builds))``; no
    exception escapes — the supervisor, not the worker, decides between
    retry and quarantine.  Exits on a ``None`` sentinel or a broken pipe.
    """
    # Fault plans are matched by the supervisor and shipped per job; a
    # plan inherited over fork must not also fire worker-side (its
    # counters would race the parent's).
    faults.install(None)
    trace_cache: "OrderedDict" = OrderedDict()
    store_cache: Dict[Tuple[str, str], SnapshotStore] = {}
    sched_cache: Dict[Tuple[str, str], schedstore.ScheduleStore] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        index = message["index"]
        counters = (0, 0, 0, 0, 0, 0, 0)
        payload: object
        try:
            action = faults.apply_worker_action(message.get("action"), message["label"])
            if action == "garbage":
                payload = "\x00injected-garbage-payload"
            else:
                payload, counters = _run_payload(
                    message, trace_cache, store_cache, sched_cache
                )
        except Exception as exc:
            payload = _JobError(
                type(exc).__name__,
                str(exc),
                isinstance(exc, (SimulationError, ConfigurationError)),
            )
        try:
            conn.send((index, payload, counters))
        except (BrokenPipeError, OSError):
            return


class _PoolWorker:
    """One persistent worker process plus its duplex pipe."""

    __slots__ = ("process", "conn", "jobs_done")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.jobs_done = 0  #: completed jobs (recycling threshold)


class _WorkerPool:
    """Process-global pool of persistent workers, shared across sweeps.

    Workers are forked lazily on first demand, parked idle when a sweep's
    supervisor releases them, and handed — still warm, with their decoded
    traces and snapshot L1 intact — to the next sweep that asks, whether
    that sweep runs in this thread or a concurrent service thread.  Jobs
    travel as self-contained payloads, so nothing here depends on
    fork-time sweep state and no fork lock serializes concurrent
    supervised fan-outs.

    Supervision is unchanged and lives in :class:`_SupervisedExecutor`:
    a crashed, hung, or garbage-spewing worker is discarded (never
    pooled), exactly as the fork-per-sweep executor replaced it.  Knobs:
    ``REPRO_POOL_SIZE`` caps the idle workers retained (default
    :data:`_POOL_SIZE_DEFAULT`), ``REPRO_POOL_MAX_JOBS`` recycles a
    worker after that many jobs (worker lifetime; default unlimited),
    ``REPRO_NO_POOL=1`` disables reuse entirely (every acquisition
    forks, every release discards — the bench's fork-per-sweep A/B
    leg).  Both knobs are overridable
    per process via :func:`configure_worker_pool`.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._idle: List[_PoolWorker] = []
        self._pid = os.getpid()
        self.size_override: Optional[int] = None
        self.max_jobs_override: Optional[int] = None
        self.forked = 0
        self.reused = 0
        self.recycled = 0
        self.discarded = 0

    def _int_knob(self, override: Optional[int], env_name: str) -> Optional[int]:
        if override is not None:
            return override
        env = os.environ.get(env_name)
        if env:
            try:
                return int(env)
            except ValueError:
                warnings.warn(
                    f"{env_name}={env!r} is not an integer; ignoring it",
                    RuntimeWarning,
                    stacklevel=3,
                )
        return None

    def _limit(self) -> int:
        value = self._int_knob(self.size_override, "REPRO_POOL_SIZE")
        return _POOL_SIZE_DEFAULT if value is None else max(0, value)

    def _max_jobs(self) -> Optional[int]:
        return self._int_knob(self.max_jobs_override, "REPRO_POOL_MAX_JOBS")

    def _check_pid_locked(self) -> None:
        # A forked child (a pool worker, a test harness fork) inherits
        # this module state, but the idle workers belong to the parent:
        # drop the bookkeeping, never the processes.
        if self._pid != os.getpid():
            self._idle = []
            self._pid = os.getpid()
            self.forked = self.reused = self.recycled = self.discarded = 0

    def acquire(self) -> _PoolWorker:
        """A live worker: a warm idle one when available, else a fresh fork.

        Fires the ``spawn`` fault site on *every* acquisition (reuse
        included), so spawn-degradation stays testable; raises ``OSError``
        on spawn failure — the supervisor owns the degradation policy.
        """
        faults.on_spawn()
        with self._lock:
            self._check_pid_locked()
            # REPRO_NO_POOL must disable reuse symmetrically: a no-pool
            # acquisition forking past the idle list (instead of draining
            # and then discarding it) leaves pooled sweeps' warm workers
            # for pooled sweeps.
            while self._idle and not os.environ.get("REPRO_NO_POOL"):
                worker = self._idle.pop()
                if worker.process.is_alive():
                    self.reused += 1
                    return worker
                self._close_locked(worker)
            # Fork under the lock: a concurrent fork could otherwise
            # inherit this pipe's child end and mask the worker's EOF.
            import multiprocessing

            ctx = multiprocessing.get_context("fork")
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            try:
                process = ctx.Process(
                    target=_pool_worker, args=(child_conn,), daemon=True
                )
                process.start()
            except OSError:
                parent_conn.close()
                child_conn.close()
                raise
            child_conn.close()
            self.forked += 1
            return _PoolWorker(process, parent_conn)

    def release(self, worker: _PoolWorker) -> None:
        """Park a healthy worker for reuse (or retire it per policy)."""
        if not worker.process.is_alive():
            self.discard(worker, kill=False)
            return
        if faults.on_worker_recycle():
            self.recycled += 1
            self.discard(worker)
            return
        if os.environ.get("REPRO_NO_POOL"):
            self.discard(worker)
            return
        max_jobs = self._max_jobs()
        if max_jobs is not None and worker.jobs_done >= max_jobs:
            self.recycled += 1
            self.discard(worker)
            return
        with self._lock:
            self._check_pid_locked()
            if len(self._idle) < self._limit():
                self._idle.append(worker)
                return
        self.discard(worker)

    def _close_locked(self, worker: _PoolWorker) -> None:
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.process.join(timeout=5.0)
        self.discarded += 1

    def discard(self, worker: _PoolWorker, kill: bool = True) -> None:
        """Retire a worker for good (dead, unhealthy, or over its limits)."""
        try:
            worker.conn.close()
        except OSError:
            pass
        if kill and worker.process.is_alive():
            worker.process.kill()
        worker.process.join(timeout=5.0)
        self.discarded += 1

    def shutdown(self) -> None:
        """Stop every idle worker (atexit, tests, explicit CLI teardown)."""
        with self._lock:
            self._check_pid_locked()
            idle, self._idle = self._idle, []
        for worker in idle:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + 2.0
        for worker in idle:
            worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=5.0)
            try:
                worker.conn.close()
            except OSError:
                pass

    def stats(self) -> Dict[str, int]:
        with self._lock:
            self._check_pid_locked()
            return {
                "idle": len(self._idle),
                "forked": self.forked,
                "reused": self.reused,
                "recycled": self.recycled,
                "discarded": self.discarded,
            }


#: Idle workers retained when no explicit pool size is configured.
_POOL_SIZE_DEFAULT = 8

#: The process singleton every supervised :func:`execute` draws from.
_POOL = _WorkerPool()
atexit.register(_POOL.shutdown)


def configure_worker_pool(
    size: Optional[int] = None, max_jobs: Optional[int] = None
) -> None:
    """Set the persistent pool's retention knobs for this process.

    ``size`` caps idle workers retained between sweeps (overrides
    ``REPRO_POOL_SIZE``); ``max_jobs`` recycles a worker after that many
    completed jobs (overrides ``REPRO_POOL_MAX_JOBS``).  ``None`` leaves
    the respective knob as configured.  Wired to the CLI's
    ``--pool-size`` / ``--pool-max-jobs`` flags.
    """
    if size is not None:
        _POOL.size_override = size
    if max_jobs is not None:
        _POOL.max_jobs_override = max_jobs


def shutdown_worker_pool() -> None:
    """Stop all idle pool workers now (tests, service shutdown)."""
    _POOL.shutdown()


def worker_pool_stats() -> Dict[str, int]:
    """The pool's lifetime counters (``/healthz``, tests)."""
    return _POOL.stats()


class _Pending:
    """One not-yet-committed job in the supervisor's queue."""

    __slots__ = ("index", "job", "key", "seq", "attempts", "ready_at", "ship_bytes")

    def __init__(self, index: int, job: JobSpec, key: Optional[str], seq: int):
        self.index = index
        self.job = job
        self.key = key
        self.seq = seq  #: stable position in the pending list (fault matching)
        self.attempts = 0  #: dispatches so far
        self.ready_at = 0.0  #: backoff: earliest monotonic re-dispatch time
        self.ship_bytes = False  #: ship record bytes (pool-file ref failed once)

    def label(self) -> str:
        return f"{self.job.system}/{self.job.trace}"


class _Worker:
    """One pool worker currently leased by a supervisor."""

    __slots__ = ("pool_worker", "entry", "deadline")

    def __init__(self, pool_worker: _PoolWorker):
        self.pool_worker = pool_worker
        self.entry: Optional[_Pending] = None
        self.deadline = 0.0

    @property
    def conn(self):
        return self.pool_worker.conn

    @property
    def process(self):
        return self.pool_worker.process


#: Consecutive worker-spawn failures before the supervisor gives up on
#: forking and degrades to in-process execution.
_SPAWN_FAILURE_LIMIT = 3


class _SupervisedExecutor:
    """Per-job dispatch with timeouts, retry/backoff, and quarantine.

    Each worker holds exactly one job at a time over its own duplex pipe,
    so a dead worker loses only that job; ``pool.map``-style chunking
    would lose the whole chunk.  The supervisor multiplexes the worker
    pipes with :func:`multiprocessing.connection.wait`, which doubles as
    both the completion signal (a reply arrives) and the death signal
    (the pipe hits EOF), and enforces each job's wall-clock deadline by
    SIGKILLing and replacing the worker.  Completed results are committed
    — cache, journal, caller callback — the moment they arrive, which is
    what makes an interrupted sweep resumable.

    Workers are leased from the process-global persistent pool
    (:class:`_WorkerPool`): jobs ship as self-contained payloads
    (``payload_for``), so a worker forked by last week's sweep serves this
    one.  Healthy workers return to the pool at shutdown; crashed, hung,
    or garbage-spewing ones are discarded — never pooled.  Jobs whose
    payload cannot ship (``transportable`` is false: ad-hoc lambda
    builders) run in-process via ``run_local`` with
    quarantine-on-exception semantics, as does the whole queue when
    worker acquisition keeps failing (degradation).
    """

    def __init__(self, entries: List[_Pending], stats: ExecutionStats,
                 policy: SupervisionPolicy, commit: Callable[[_Pending, RunResult], None],
                 processes: int,
                 payload_for: Callable[[_Pending], Dict[str, object]],
                 run_local: Callable[[_Pending], RunResult],
                 transportable: Callable[[_Pending], bool]):
        self.queue: "deque[_Pending]" = deque(
            entry for entry in entries if transportable(entry)
        )
        self.local: List[_Pending] = [
            entry for entry in entries if not transportable(entry)
        ]
        self.stats = stats
        self.policy = policy
        self.commit = commit
        self.processes = processes
        self.payload_for = payload_for
        self.run_local = run_local
        self.workers: Dict[object, _Worker] = {}  # conn -> worker
        self.failures: List[JobFailure] = []
        self.remaining = len(entries)
        self._spawn_failures = 0
        self._degraded = False

    # -- lifecycle ---------------------------------------------------------
    def _spawn(self) -> bool:
        try:
            pool_worker = _POOL.acquire()
        except OSError as exc:
            self._spawn_failures += 1
            if self._spawn_failures >= _SPAWN_FAILURE_LIMIT and not self._live():
                self._degraded = True
                warnings.warn(
                    f"supervised executor: worker fork kept failing ({exc}); "
                    "degrading to in-process execution",
                    RuntimeWarning,
                    stacklevel=4,
                )
            return False
        self._spawn_failures = 0
        if pool_worker.jobs_done > 0:
            self.stats.pool_reused += 1
        self.workers[pool_worker.conn] = _Worker(pool_worker)
        self.stats.workers_effective = max(
            self.stats.workers_effective, len(self.workers)
        )
        return True

    def _live(self) -> int:
        return len(self.workers)

    def _reap(self, worker: _Worker, kill: bool) -> None:
        # Job-level failure: this worker is not trustworthy (or dead) —
        # retire it from the pool entirely, never park it.
        self.workers.pop(worker.conn, None)
        _POOL.discard(worker.pool_worker, kill=kill)

    def _shutdown(self) -> None:
        for worker in list(self.workers.values()):
            if worker.entry is None:
                _POOL.release(worker.pool_worker)
            else:
                # Still holding a job (strict-mode abort mid-flight): the
                # reply would arrive into nobody's sweep — kill it.
                _POOL.discard(worker.pool_worker, kill=True)
        self.workers.clear()

    # -- failure handling --------------------------------------------------
    def _quarantine(self, entry: _Pending, reason: str, detail: str) -> None:
        failure = JobFailure(
            index=entry.index, job=entry.job, reason=reason,
            attempts=entry.attempts, detail=detail,
        )
        self.failures.append(failure)
        self.stats.quarantined += 1
        self.remaining -= 1
        warnings.warn(
            f"supervised executor: quarantined {failure.describe()}",
            RuntimeWarning,
            stacklevel=4,
        )
        if self.policy.strict:
            raise ExecutionError(
                f"sweep job failed permanently: {failure.describe()} "
                "(completed jobs are checkpointed; a re-run resumes from them)"
            )

    def _fail(self, entry: _Pending, reason: str, detail: str,
              deterministic: bool = False) -> None:
        entry.attempts += 1
        if deterministic or entry.attempts > self.policy.max_retries:
            self._quarantine(entry, reason, detail)
            return
        self.stats.retries += 1
        entry.ready_at = (
            time.monotonic() + self.policy.backoff_base * (2 ** (entry.attempts - 1))
        )
        self.queue.append(entry)

    # -- main loop ---------------------------------------------------------
    def _dispatch(self, now: float) -> None:
        idle = [worker for worker in self.workers.values() if worker.entry is None]
        if not idle:
            return
        held: List[_Pending] = []
        while idle and self.queue:
            entry = self.queue.popleft()
            if entry.ready_at > now:
                held.append(entry)  # still backing off
                continue
            worker = idle.pop()
            try:
                # The payload is built per dispatch: the shipped fault
                # action depends on the attempt, and a retried job may
                # switch its trace reference to inline bytes.
                worker.conn.send(self.payload_for(entry))
            except (BrokenPipeError, OSError):
                # Died while idle: no job was lost, just replace it.
                self._reap(worker, kill=False)
                held.append(entry)
                continue
            worker.entry = entry
            worker.deadline = now + self.policy.timeout_for(entry.job.num_instructions)
        self.queue.extendleft(reversed(held))

    def _wait_timeout(self, now: float) -> float:
        horizons = [w.deadline for w in self.workers.values() if w.entry is not None]
        horizons.extend(entry.ready_at for entry in self.queue)
        if not horizons:
            return 0.05
        # Cap the sleep so replenish/dispatch stay live even when quiet.
        return min(max(min(horizons) - now, 0.0), 1.0)

    def _run_one_local(self, entry: _Pending) -> None:
        try:
            result = self.run_local(entry)
        except Exception as exc:
            entry.attempts += 1
            self._quarantine(entry, "error", f"{type(exc).__name__}: {exc}")
            return
        self.commit(entry, result)
        self.remaining -= 1

    def _run_local_entries(self) -> None:
        """Jobs whose payload cannot ship (ad-hoc builders) run here.

        Same quarantine-on-exception semantics as the degraded path: the
        sweep still completes, strict mode still raises.
        """
        if not self.local:
            return
        self.stats.workers_effective = max(self.stats.workers_effective, 1)
        for entry in self.local:
            self._run_one_local(entry)

    def _run_in_process(self) -> None:
        """Worker acquisition is unavailable or keeps failing: finish here.

        No crash/timeout supervision is possible in-process (a crash
        would be ours), so job exceptions quarantine directly — but the
        sweep still completes, committed jobs stay committed, and strict
        mode still raises.
        """
        self.stats.workers_effective = max(self.stats.workers_effective, 1)
        while self.queue:
            self._run_one_local(self.queue.popleft())

    def run(self) -> List[JobFailure]:
        from multiprocessing import connection as mp_connection

        try:
            self._run_local_entries()
            while self.remaining > 0:
                if self._degraded:
                    self._run_in_process()
                    break
                in_flight = sum(
                    1 for worker in self.workers.values() if worker.entry is not None
                )
                want = min(self.processes, len(self.queue) + in_flight)
                while self._live() < want and not self._degraded:
                    if not self._spawn():
                        break
                if self._degraded:
                    continue
                now = time.monotonic()
                self._dispatch(now)
                timeout = self._wait_timeout(time.monotonic())
                if self.workers:
                    ready = mp_connection.wait(list(self.workers), timeout=timeout)
                else:
                    time.sleep(timeout)
                    ready = []
                for conn in ready:
                    worker = self.workers.get(conn)
                    if worker is None:
                        continue
                    self._on_readable(worker)
                now = time.monotonic()
                for worker in list(self.workers.values()):
                    if worker.entry is not None and worker.deadline < now:
                        entry = worker.entry
                        worker.entry = None
                        self._reap(worker, kill=True)
                        self.stats.timeouts += 1
                        self._fail(
                            entry, "timeout",
                            f"exceeded {self.policy.timeout_for(entry.job.num_instructions):.1f}s "
                            f"wall clock; worker killed",
                        )
        finally:
            self._shutdown()
        return self.failures

    def _on_readable(self, worker: _Worker) -> None:
        entry = worker.entry
        try:
            message = worker.conn.recv()
        except (EOFError, OSError):
            worker.entry = None
            exitcode = worker.process.exitcode
            self._reap(worker, kill=False)
            if entry is not None:
                self._fail(entry, "crash", f"worker died (exit code {exitcode})")
            return
        worker.entry = None
        valid = (
            entry is not None
            and isinstance(message, tuple)
            and len(message) == 3
            and message[0] == entry.index
        )
        payload = message[1] if valid else None
        if valid and isinstance(payload, _JobError):
            if payload.exc_type == "_TraceTransportError":
                # The shared pool file failed the worker (vanished, stale,
                # digest mismatch): retry with the bytes shipped inline.
                entry.ship_bytes = True
            self._fail(
                entry, "error", f"{payload.exc_type}: {payload.detail}",
                deterministic=payload.deterministic,
            )
            return
        if valid and isinstance(payload, RunResult):
            (builds, clones, disk_hits, ff_cycles, replays,
             sched_hits, sched_builds) = message[2]
            self.stats.snapshot_builds += builds
            self.stats.snapshot_clones += clones
            self.stats.snapshot_disk_hits += disk_hits
            self.stats.hier_fast_forwarded_cycles += ff_cycles
            self.stats.hier_schedule_replays += replays
            self.stats.sched_store_hits += sched_hits
            self.stats.sched_store_builds += sched_builds
            worker.pool_worker.jobs_done += 1
            self.commit(entry, payload)
            self.remaining -= 1
            return
        # Garbage reply: the worker's state is not trustworthy anymore —
        # replace it, retry the job elsewhere.
        self._reap(worker, kill=True)
        if entry is not None:
            self._fail(entry, "garbage", f"unusable reply {type(payload).__name__}")


_FALLBACK_WARNED = False


def _warn_sequential_fallback(reason: str) -> None:
    """One warning per process when requested fan-out cannot happen."""
    global _FALLBACK_WARNED
    if not _FALLBACK_WARNED:
        _FALLBACK_WARNED = True
        warnings.warn(
            f"worker fan-out disabled: {reason}; executing jobs in-process "
            "(workers_effective records what actually ran)",
            RuntimeWarning,
            stacklevel=3,
        )


def execute(
    plan: RunPlan,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    pool: Optional[TracePool] = None,
    snapshots: bool = True,
    trace_memo: bool = True,
    supervision: Optional[SupervisionPolicy] = None,
    on_result: Optional[Callable[[JobSpec, RunResult], None]] = None,
    on_progress: Optional[Callable[[int, int, ExecutionStats], None]] = None,
    store=None,
) -> PlanRun:
    """Execute ``plan`` and return its results in job order.

    Args:
        workers: fan the uncached jobs out over that many worker processes
            leased from the persistent pool under the supervised executor
            (order-preserving and result-identical, exactly like the
            historical ``run_suite`` fan-out; falls back to in-process
            execution — with a :class:`RuntimeWarning` naming the reason —
            without ``fork``).  Workers outlive this call and are reused
            by later sweeps, including concurrent ones from service
            threads (no fork lock).
        cache: result cache; ``None`` disables memoization.  A ``-dirty``
            or unknown simulator version bypasses a configured cache with a
            warning.  An active cache also activates the per-sweep
            checkpoint journal: completed jobs are committed as they
            finish, and an interrupted sweep resumes from them.
        pool: trace pool; defaults to ``<cache dir>/traces`` when a cache
            is active, else in-memory synthesis.
        snapshots: clone prewarmed hierarchies across jobs that share a
            (builder, trace) pair; disable to force the direct
            build-and-prewarm path per job.  With an active cache,
            snapshots are additionally shared across processes through the
            on-disk :class:`SnapshotStore` (``<cache dir>/snapshots``;
            ``REPRO_NO_SNAPSHOT_STORE=1`` disables the disk tier).
        trace_memo: share immutable synthesized traces (and their cached
            decode / resident set / digest) across execute calls in this
            process; disable to force per-plan materialization.
        supervision: retry/timeout/quarantine policy for the worker path
            (defaults to :class:`SupervisionPolicy`'s defaults; an active
            fault plan may override fields for testing).
        on_result: streaming-completion hook, called as each job's result
            becomes available (cache hit, journal restore, store hit,
            in-flight adoption, or fresh simulation; completion order
            under workers is nondeterministic).
        on_progress: called as ``callback(done, total, stats)`` after
            every landed job and once more when the sweep finishes
            (defaults to the process-wide callback installed by
            :func:`set_default_progress`).
        store: a :class:`~repro.sim.store.ResultStore` consulted after a
            cache miss and fed every landed result (defaults to the
            :func:`use_store` context's store).  The same dirty/unknown
            version rule as the cache applies.  Jobs neither the cache
            nor the store can answer are deduplicated against identical
            jobs already in flight in other threads of this process.
    """
    stats = ExecutionStats(jobs=len(plan.jobs))
    version: Optional[str] = None
    active_cache = cache
    active_store = store if store is not None else _DEFAULT_STORE
    if active_cache is not None or active_store is not None:
        version = simulator_version()
        if version == "unknown" or version.endswith("-dirty"):
            _warn_cache_bypassed(version)
            active_cache = None
            active_store = None
    if pool is None and active_cache is not None:
        pool = TracePool(os.path.join(active_cache.directory, "traces"))

    # On-disk snapshot tier: only with an active cache (the store lives
    # next to it, and the same dirty/unknown version rule applies).
    disk_store: Optional[SnapshotStore] = None
    if (
        snapshots
        and active_cache is not None
        and not os.environ.get("REPRO_NO_SNAPSHOT_STORE")
    ):
        disk_store = SnapshotStore(
            os.path.join(active_cache.directory, "snapshots"), version=version
        )

    # Persistent analytic-schedule store: same placement and dirty/unknown
    # version rule as the snapshot tier.  ``store_enabled`` gates load and
    # publish together (symmetric kill switch) — constructing no store here
    # disables both sides at once, in this process and in every payload.
    sched_store: Optional[schedstore.ScheduleStore] = None
    if active_cache is not None and schedstore.store_enabled():
        sched_store = schedstore.ScheduleStore(
            os.path.join(active_cache.directory, "schedules"), version=version
        )

    progress = on_progress if on_progress is not None else _DEFAULT_PROGRESS
    total = len(plan.jobs)
    done = 0

    def note_done() -> None:
        nonlocal done
        done += 1
        if progress is not None:
            progress(done, total, stats)

    traces: Dict[str, Trace] = {}
    digests: Dict[str, str] = {}

    def materialize(key: str) -> Trace:
        trace = traces.get(key)
        if trace is None:
            source = plan.traces[key]
            memo_key = _memo_key(source) if trace_memo else None
            trace = _TRACE_MEMO.get(memo_key) if memo_key is not None else None
            if trace is None:
                trace = pool.fetch(source, stats) if pool is not None else source.build()
                if memo_key is not None:
                    _TRACE_MEMO[memo_key] = trace
                    while len(_TRACE_MEMO) > _TRACE_MEMO_CAP:
                        _, evicted = _TRACE_MEMO.popitem(last=False)
                        # Publish-on-eviction: schedules built since the
                        # evicted trace's last job must reach disk before
                        # the decode is garbage-collected.
                        stats.sched_store_builds += schedstore.publish_pending(evicted)
            elif pool is not None:
                # Memo hit, but the file-backed capture must still appear.
                pool.ensure(source, trace, stats)
            traces[key] = trace
        return trace

    def content_digest(key: str) -> str:
        digest = digests.get(key)
        if digest is None:
            digest = trace_digest(materialize(key))
            digests[key] = digest
        return digest

    core_digest = _core_config_digest(plan.core_config)
    results: List[Optional[RunResult]] = [None] * len(plan.jobs)

    # Content-address every job up front: the keys name the cache entries,
    # the journal rows, the store rows, the in-flight claims, and (digested
    # together) the sweep's journal file.  The metas carry the digest
    # provenance the store persists per row.
    keys: List[Optional[str]] = [None] * len(plan.jobs)
    metas: List[Optional[Dict[str, object]]] = [None] * len(plan.jobs)
    if active_cache is not None or active_store is not None:
        for index, job in enumerate(plan.jobs):
            builder_digest = plan.builders[job.builder].digest()
            if builder_digest is not None:
                trace_content = content_digest(job.trace)
                keys[index] = _cache_key(
                    job, builder_digest, trace_content, core_digest, version
                )
                metas[index] = {
                    "builder_digest": builder_digest,
                    "trace_digest": trace_content,
                    "core_digest": core_digest,
                    "simulator_version": version,
                    "num_instructions": job.num_instructions,
                    "prewarm": job.prewarm,
                    "mode": job.mode,
                }

    journal: Optional[SweepJournal] = None
    journal_rows: Dict[str, Dict[str, object]] = {}
    if active_cache is not None and any(key is not None for key in keys):
        journal = SweepJournal.for_plan(
            active_cache.directory, [key for key in keys if key is not None]
        )
        journal_rows = journal.load()

    def store_put(index: int, key: str, result: RunResult) -> None:
        if active_store is not None:
            active_store.put(key, result, meta=metas[index])

    pending: List[Tuple[int, JobSpec, Optional[str]]] = []
    for index, job in enumerate(plan.jobs):
        key = keys[index]
        if key is not None:
            if active_cache is not None:
                hit = active_cache.get(key)
                if hit is not None:
                    hit.system = job.system
                    results[index] = hit
                    stats.cached += 1
                    # The store converges on everything the cache knows.
                    store_put(index, key, hit)
                    if on_result is not None:
                        on_result(job, hit)
                    note_done()
                    continue
                row = journal_rows.get(key)
                if row is not None:
                    # An interrupted sweep checkpointed this job; restore it
                    # and repair the cache entry the crash (or pruning) lost.
                    restored = _result_from_row(row)
                    restored.system = job.system
                    results[index] = restored
                    stats.resumed_from_journal += 1
                    active_cache.put(key, restored, meta=metas[index])
                    store_put(index, key, restored)
                    if on_result is not None:
                        on_result(job, restored)
                    note_done()
                    continue
            if active_store is not None:
                hit = active_store.get(key)
                if hit is not None:
                    hit.system = job.system
                    results[index] = hit
                    stats.store_hits += 1
                    if active_cache is not None:
                        # Repair the faster tier so the next run is one open().
                        active_cache.put(key, hit, meta=metas[index])
                    if on_result is not None:
                        on_result(job, hit)
                    note_done()
                    continue
        pending.append((index, job, key))

    # In-flight dedup: claim every addressable pending job.  Owned jobs
    # simulate here; a job another thread already claimed waits for that
    # thread's result instead of simulating it twice.
    claimed: set = set()
    owned: List[Tuple[int, JobSpec, Optional[str]]] = []
    waiting: List[Tuple[int, JobSpec, str, _InflightEntry]] = []
    for index, job, key in pending:
        entry = _INFLIGHT.claim(key) if key is not None else None
        if entry is None:
            if key is not None:
                claimed.add(key)
            owned.append((index, job, key))
        else:
            waiting.append((index, job, key, entry))

    failures: List[JobFailure] = []
    completed_ok = False
    try:
        if pending:
            snapshot_keys: Dict[JobSpec, Tuple[str, str]] = {}
            sched_keys: Dict[JobSpec, Tuple[str, str]] = {}
            local_blobs: Dict[Tuple[str, str], bytes] = {}
            for index, job, key in pending:
                materialize(job.trace)  # pool files land before any dispatch
                if snapshots and job.prewarm:
                    builder_digest = plan.builders[job.builder].digest()
                    snapshot_keys[job] = (
                        builder_digest or f"adhoc:{job.builder}",
                        content_digest(job.trace),
                    )
                if sched_store is not None and job not in sched_keys:
                    # Schedule blobs address by (trace content, config):
                    # ad-hoc builders (no digest) stay per-process.
                    builder_digest = plan.builders[job.builder].digest()
                    if builder_digest is not None:
                        sched_keys[job] = (
                            content_digest(job.trace),
                            f"{builder_digest}/{core_digest}",
                        )
            stats.simulated = len(owned)

            def commit(index: int, job: JobSpec, key: Optional[str],
                       result: RunResult) -> None:
                """Checkpoint one finished job the moment it completes."""
                results[index] = result
                if key is not None:
                    if active_cache is not None:
                        active_cache.put(key, result, meta=metas[index])
                    if journal is not None:
                        journal.append(key, result, meta=metas[index])
                    store_put(index, key, result)
                    if key in claimed:
                        # Hand waiters their own copy: results are mutable
                        # (labels get rewritten by adopting sweeps).
                        _INFLIGHT.resolve(key, _copy_result(result))
                        claimed.discard(key)
                if on_result is not None:
                    on_result(job, result)
                faults.on_commit()
                note_done()

            use_workers = workers is not None and workers > 1 and len(owned) > 1
            if use_workers and not hasattr(os, "fork"):
                _warn_sequential_fallback(
                    f"workers={workers} requested but the platform lacks os.fork"
                )
                use_workers = False

            if use_workers:
                policy = _effective_policy(supervision)
                entries = [
                    _Pending(index, job, key, seq)
                    for seq, (index, job, key) in enumerate(owned)
                ]
                # Jobs ship to the persistent pool as self-contained
                # payloads; a builder must pickle by reference (registry
                # specs do — functools.partial of module-level factories)
                # and carry a digest.  Anything else runs in-process.
                shippable: Dict[str, bool] = {}

                def transportable(entry: _Pending) -> bool:
                    name = entry.job.builder
                    known = shippable.get(name)
                    if known is None:
                        spec = plan.builders[name]
                        known = spec.digest() is not None
                        if known:
                            try:
                                pickle.dumps(spec, pickle.HIGHEST_PROTOCOL)
                            except Exception:
                                known = False
                        shippable[name] = known
                    return known

                ref_cache: Dict[Tuple[str, bool], tuple] = {}

                def trace_ref(entry: _Pending) -> tuple:
                    cache_key = (entry.job.trace, entry.ship_bytes)
                    ref = ref_cache.get(cache_key)
                    if ref is None:
                        trace = traces[entry.job.trace]
                        source = plan.traces[entry.job.trace]
                        if (
                            not entry.ship_bytes
                            and pool is not None
                            and source.signature is not None
                        ):
                            path = pool.path_for(source)
                            if os.path.exists(path):
                                ref = (
                                    "path", path, content_digest(entry.job.trace),
                                    trace.name, trace.category,
                                )
                        if ref is None:
                            ref = (
                                "bytes", trace.name, trace.category,
                                records_bytes(trace),
                            )
                        ref_cache[cache_key] = ref
                    return ref

                def payload_for(entry: _Pending) -> Dict[str, object]:
                    job = entry.job
                    source = plan.traces[job.trace]
                    return {
                        "index": entry.index,
                        "label": entry.label(),
                        # The supervisor matches worker-job faults and
                        # ships the action: pool workers run with no
                        # installed plan (they may predate it).
                        "action": faults.worker_job_action(
                            entry.label(), entry.seq, entry.attempts
                        ),
                        "system": job.system,
                        "workload": source.name,
                        "category": source.category,
                        "builder": plan.builders[job.builder],
                        "trace_ref": trace_ref(entry),
                        "prewarm": job.prewarm,
                        "mode": job.mode,
                        "core_config": plan.core_config,
                        "snapshot_key": snapshot_keys.get(job),
                        "snapshot_dir": (
                            disk_store.directory if disk_store is not None else None
                        ),
                        "snapshot_version": (
                            disk_store.version if disk_store is not None else None
                        ),
                        "sched_key": sched_keys.get(job),
                        "sched_dir": (
                            sched_store.directory if sched_store is not None else None
                        ),
                        "sched_version": (
                            sched_store.version if sched_store is not None else None
                        ),
                    }

                def run_local(entry: _Pending) -> RunResult:
                    return _run_job(
                        plan, entry.job, traces[entry.job.trace],
                        snapshot_keys.get(entry.job), local_blobs, stats, disk_store,
                        sched_store, sched_keys.get(entry.job),
                    )

                executor = _SupervisedExecutor(
                    entries,
                    stats,
                    policy,
                    lambda entry, result: commit(
                        entry.index, entry.job, entry.key, result
                    ),
                    processes=min(workers, len(owned)),
                    payload_for=payload_for,
                    run_local=run_local,
                    transportable=transportable,
                )
                failures = executor.run()
            elif owned:
                stats.workers_effective = max(stats.workers_effective, 1)
                for index, job, key in owned:
                    commit(
                        index, job, key,
                        _run_job(
                            plan, job, traces[job.trace], snapshot_keys.get(job),
                            local_blobs, stats, disk_store,
                            sched_store, sched_keys.get(job),
                        ),
                    )

            if waiting:
                # Quarantined owned jobs never committed: release their
                # claims now so a same-key waiter below (or in another
                # thread) falls back to simulating instead of timing out.
                for failure in failures:
                    failed_key = keys[failure.index]
                    if failed_key is not None and failed_key in claimed:
                        _INFLIGHT.abandon(failed_key)
                        claimed.discard(failed_key)
                policy = _effective_policy(supervision)
                for index, job, key, entry in waiting:
                    # Generous cap: the owner has the same per-job timeout
                    # budget plus retries.  Dedup is best-effort — on a
                    # timed-out or abandoned claim we simulate ourselves;
                    # every write path is idempotent.
                    cap = max(
                        60.0,
                        policy.timeout_for(job.num_instructions)
                        * (policy.max_retries + 2),
                    )
                    adopted = entry.result if entry.event.wait(cap) else None
                    if adopted is None:
                        stats.simulated += 1
                        stats.workers_effective = max(stats.workers_effective, 1)
                        commit(
                            index, job, key,
                            _run_job(
                                plan, job, traces[job.trace], snapshot_keys.get(job),
                                local_blobs, stats, disk_store,
                                sched_store, sched_keys.get(job),
                            ),
                        )
                        continue
                    result = _copy_result(adopted)
                    result.system = job.system
                    stats.inflight_hits += 1
                    commit(index, job, key, result)
        completed_ok = not failures
    finally:
        # Claims left over (exception mid-sweep, quarantined jobs with no
        # same-plan waiter) must wake cross-thread waiters.
        for key in list(claimed):
            _INFLIGHT.abandon(key)
        if journal is not None:
            if completed_ok:
                # The sweep finished: the cache holds everything, the
                # checkpoint has served its purpose.
                journal.delete()
            else:
                # Interrupted (exception) or partially failed: keep the
                # journal so the next run resumes from it.
                journal.close()

    if progress is not None:
        progress(done, total, stats)
    for collector in _COLLECTORS:
        collector.add(stats)
    return PlanRun(results=results, stats=stats, failures=failures)

