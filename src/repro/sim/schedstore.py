"""Persistent analytic-schedule store: span/hier memos shared across processes.

The two analytic engines in :meth:`repro.cpu.core.OoOCore.run_batch` memoize
their computed schedules on the :class:`~repro.cpu.trace.DecodedTrace`
(``span_memo`` / ``hier_memo``): a schedule is a pure function of (trace
bytes, core + hierarchy configuration, engine version, entry state), so a
memo hit replays in O(exit state) instead of re-running the three analysis
passes.  Those memos used to live per-process — every pooled worker and
every fresh ``execute()`` rebuilt them from scratch, which is why warm
sweep throughput never saw the engines' warm-replay speedups.

This module adds the disk tier: a content-addressed blob store
(:class:`ScheduleStore`, ``<cache>/schedules/<aa>/<digest>.blob``) holding
the serialized memo tables per (simulator version, trace content digest,
config key).  The *first* run of a trace in any process starts at
warm-replay speed when a sibling — a pool worker, yesterday's sweep, the
service — already built the schedules.  Replay-side validation is
unchanged: restored entries go through exactly the same memo probe and
structural checks as locally built ones, so results stay bit-identical to
dense by construction; a corrupt blob degrades to a miss (discarded with a
warning and rebuilt), never to a wrong schedule.

Store discipline mirrors :class:`repro.sim.plan.SnapshotStore`: digests are
the sha256 of ``schedule/{simulator version}/{trace digest}/{config key}``
(the version in the address means a code change can never serve stale
schedules), writes are tmp+fsync+``os.replace`` and fire the
``schedule-store`` fault site, pruning is size-capped LRU under
``REPRO_SCHEDULE_LIMIT_MB`` (falling back to the shared
``REPRO_CACHE_LIMIT_MB``).  ``REPRO_NO_SCHED_STORE=1`` is the kill switch
and is deliberately **symmetric**: it disables both load *and* publish
(:func:`store_enabled` is checked by every caller on both sides), so the
disabled leg of an A/B measures the true no-store baseline instead of
silently warming the store for the other leg.

Blobs are versioned by :data:`SCHED_CODEC`; a blob with an unknown codec
or shape is treated as a miss (and swept by :meth:`ScheduleStore.verify`),
never misread.

The per-process load/publish bookkeeping lives on the decoded trace
(``DecodedTrace.sched_sync``): one load per (store, trace, config) per
process, and a publish only when the tables actually changed since the
last sync — repeated jobs over one trace do not rewrite identical blobs.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import warnings
from typing import Dict, List, Optional, Tuple

from repro.sim import faults

#: Bump when the blob layout or the memo key/record format changes; old
#: blobs then miss (and are swept by ``verify``) instead of being misread.
#: The simulator version is part of the blob *address*, so engine-behaviour
#: changes partition automatically; this guards the serialization itself.
SCHED_CODEC = 1

_HEADER = "sched"


def store_enabled() -> bool:
    """Whether the schedule store participates at all (symmetric kill switch).

    ``REPRO_NO_SCHED_STORE=1`` disables **both** load and publish — a
    one-sided disable would let the "disabled" leg of an A/B warm the
    store for the enabled leg (exactly the asymmetric ``REPRO_NO_POOL``
    bug the snapshot-store bench assertion caught).
    """
    return os.environ.get("REPRO_NO_SCHED_STORE", "") in ("", "0")


def _encode(span_memo: Dict, hier_memo: Dict) -> bytes:
    return pickle.dumps(
        (_HEADER, SCHED_CODEC, span_memo, hier_memo),
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def _decode(blob: bytes) -> Optional[Tuple[Dict, Dict]]:
    """Decode a schedule blob; ``None`` for unknown codec/shape.

    Raises on a blob that does not unpickle (the caller treats that as
    corruption); returns ``None`` — a plain miss — for a well-formed
    pickle that is not a current-codec schedule payload.
    """
    payload = pickle.loads(blob)
    if (
        not isinstance(payload, tuple)
        or len(payload) != 4
        or payload[0] != _HEADER
        or payload[1] != SCHED_CODEC
        or not isinstance(payload[2], dict)
        or not isinstance(payload[3], dict)
    ):
        return None
    return payload[2], payload[3]


class ScheduleStore:
    """Content-addressed on-disk store of analytic-schedule blobs.

    One blob per (simulator version, trace content digest, config key):
    the pickled ``(span_memo, hier_memo)`` tables of a decoded trace,
    including negative memos (memoized abandonments are as valuable to
    skip as schedules are to replay).  Memo keys fully qualify their core
    and hierarchy configuration, so a blob written while several configs
    shared one trace is a harmless superset for any one of them — loading
    merges, never replaces.
    """

    #: Amortisation: the size audit walks the blob tree, so it runs at
    #: most once every this many writes (and on the first write).
    PRUNE_EVERY = 16

    def __init__(self, directory: str, version: Optional[str] = None,
                 limit_mb: Optional[float] = None):
        self.directory = directory
        self.version = version if version else "unversioned"
        self._write_failed = False
        if limit_mb is None:
            for knob in ("REPRO_SCHEDULE_LIMIT_MB", "REPRO_CACHE_LIMIT_MB"):
                env = os.environ.get(knob)
                if not env:
                    continue
                try:
                    limit_mb = float(env)
                except ValueError:
                    warnings.warn(
                        f"{knob}={env!r} is not a number; ignoring it",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    continue
                break
        self.limit_bytes = None if limit_mb is None else int(limit_mb * 1024 * 1024)
        self._puts_since_prune: Optional[int] = None  # None = never audited

    def _path(self, key: Tuple[str, str]) -> str:
        digest = hashlib.sha256(
            f"schedule/{self.version}/{key[0]}/{key[1]}".encode("utf-8")
        ).hexdigest()
        return os.path.join(self.directory, digest[:2], f"{digest}.blob")

    def load(self, key: Tuple[str, str]) -> Optional[Tuple[Dict, Dict]]:
        """The decoded memo tables for ``key``, or ``None`` on any miss.

        A blob that fails to unpickle is corrupt (a torn write, bit rot,
        an injected fault): discarded with a :class:`RuntimeWarning` and
        rebuilt by the caller's next publish — never trusted, never fatal.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            return None
        try:
            decoded = _decode(blob)
        except Exception as exc:
            warnings.warn(
                f"schedule store: corrupt blob {path} ({exc}); discarding",
                RuntimeWarning,
                stacklevel=2,
            )
            self.discard(key)
            return None
        if decoded is None:  # stale codec: a miss, swept by verify()
            return None
        if self.limit_bytes is not None:
            try:
                os.utime(path)  # LRU stamp: hits protect their blob
            except OSError:
                pass
        return decoded

    def store(self, key: Tuple[str, str], span_memo: Dict, hier_memo: Dict) -> bool:
        path = self._path(key)
        try:
            blob = _encode(span_memo, hier_memo)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            tmp = f"{path}.tmp{os.getpid()}"
            with open(tmp, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except (OSError, pickle.PicklingError) as exc:
            if not self._write_failed:
                self._write_failed = True
                warnings.warn(
                    f"schedule store: disabled writes ({exc})",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return False
        faults.on_write("schedule-store", path)
        count = self._puts_since_prune
        if count is None or count + 1 >= self.PRUNE_EVERY:
            self.prune()
            self._puts_since_prune = 0
        else:
            self._puts_since_prune = count + 1
        return True

    def discard(self, key: Tuple[str, str]) -> None:
        try:
            os.remove(self._path(key))
        except OSError:
            pass

    def prune(self) -> int:
        """Evict oldest-access blobs until the store fits its size limit."""
        if self.limit_bytes is None:
            return 0
        entries: List[Tuple[float, int, str]] = []
        total = 0
        try:
            for dirpath, _, filenames in os.walk(self.directory):
                for filename in filenames:
                    if not filename.endswith(".blob"):
                        continue
                    path = os.path.join(dirpath, filename)
                    try:
                        info = os.stat(path)
                    except OSError:
                        continue
                    entries.append((info.st_mtime, info.st_size, path))
                    total += info.st_size
        except OSError:
            return 0
        deleted = 0
        if total > self.limit_bytes:
            entries.sort()
            for _, size, path in entries:
                try:
                    os.remove(path)
                except OSError:
                    pass
                total -= size
                deleted += 1
                if total <= self.limit_bytes:
                    break
        return deleted

    def verify(self, delete: bool = True) -> Dict[str, int]:
        """Scan the blob tree for corrupt blobs and stale tmp files.

        A blob is *corrupt* when it does not decode as a current-codec
        schedule payload — exactly the test :meth:`load` applies — and is
        removed with ``delete`` (the default), as are ``.tmp`` leftovers
        of crashed writers.  Returns ``{"checked", "corrupt", "stale_tmp",
        "deleted"}`` counts; healthy blobs are byte-untouched.
        """
        report = {"checked": 0, "corrupt": 0, "stale_tmp": 0, "deleted": 0}

        def remove(path: str) -> None:
            if delete:
                try:
                    os.remove(path)
                    report["deleted"] += 1
                except OSError:
                    pass

        for dirpath, _, filenames in os.walk(self.directory):
            for filename in filenames:
                path = os.path.join(dirpath, filename)
                if ".tmp" in filename:
                    report["stale_tmp"] += 1
                    remove(path)
                    continue
                if not filename.endswith(".blob"):
                    continue
                report["checked"] += 1
                try:
                    with open(path, "rb") as handle:
                        decoded = _decode(handle.read())
                except Exception as exc:
                    report["corrupt"] += 1
                    warnings.warn(
                        f"schedule store: corrupt blob {path} ({exc})",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    remove(path)
                    continue
                if decoded is None:
                    report["corrupt"] += 1
                    warnings.warn(
                        f"schedule store: stale-codec blob {path}",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    remove(path)
        return report


# ------------------------------------------------------------------ sync helpers
def _sync_key(store: ScheduleStore, trace_digest: str, cfg_key: str) -> tuple:
    return (store.directory, store.version, trace_digest, cfg_key)


def restore_schedules(
    store: Optional[ScheduleStore], trace, trace_digest: str, cfg_key: str
) -> int:
    """Merge the stored schedules for (trace, config) into the decode.

    Loads at most once per (store, trace, config) per process — the decoded
    trace's ``sched_sync`` remembers the sync point, so the jobs of a sweep
    that share a trace pay one disk read.  Merging uses ``setdefault``:
    entries the process already built win (they are identical by the purity
    contract; keeping them avoids touching hot dict slots), disk entries
    fill the rest.  The recorded sync point is the sizes the *disk* covers
    — ``(0, 0)`` on a miss — so schedules built before the first restore
    (an uncached sweep earlier in the process) still count as unsynced
    growth and get published.  Returns 1 when a blob restored at least one
    entry (``sched_store_hits``), else 0.
    """
    if store is None or not store_enabled():
        return 0
    decoded = trace.decoded()
    sync = decoded.sched_sync
    key = _sync_key(store, trace_digest, cfg_key)
    if key in sync:
        return 0
    loaded = store.load((trace_digest, cfg_key))
    span_memo, hier_memo = decoded.span_memo, decoded.hier_memo
    restored = 0
    covered = (0, 0)
    if loaded is not None:
        disk_span, disk_hier = loaded
        covered = (len(disk_span), len(disk_hier))
        for memo, disk in ((span_memo, disk_span), (hier_memo, disk_hier)):
            for entry_key, record in disk.items():
                if entry_key not in memo:
                    memo[entry_key] = record
                    restored += 1
    sync[key] = covered
    return 1 if restored else 0


def publish_schedules(
    store: Optional[ScheduleStore], trace, trace_digest: str, cfg_key: str
) -> int:
    """Write the trace's current schedules back to the store if they grew.

    A publish happens only when the memo sizes changed since the last sync
    for this (store, trace, config) — jobs that replayed existing schedules
    without building new ones rewrite nothing.  The whole tables are
    written (memo keys fully qualify their config, so the blob is a valid
    superset for every config that shares the trace).  Returns 1 when a
    blob was written (``sched_store_builds``), else 0.
    """
    if store is None or not store_enabled():
        return 0
    decoded = trace._decoded_cache
    if decoded is None:  # never decoded: nothing was simulated, nothing to publish
        return 0
    span_memo, hier_memo = decoded.span_memo, decoded.hier_memo
    sizes = (len(span_memo), len(hier_memo))
    if sizes == (0, 0):
        return 0
    sync = decoded.sched_sync
    key = _sync_key(store, trace_digest, cfg_key)
    if sync.get(key) == sizes:
        return 0
    if not store.store((trace_digest, cfg_key), span_memo, hier_memo):
        return 0
    sync[key] = sizes
    return 1


def publish_pending(trace) -> int:
    """Flush a trace's unsynced schedules to every store it ever synced with.

    The eviction hook: called just before a trace cache drops its last
    reference to a decoded trace, so schedules built after the trace's
    final job publish (a different config's job, an interleaved sweep)
    still reach disk.  The sync bookkeeping names each store by
    (directory, version), which is all a :class:`ScheduleStore` is —
    reconstructing one here is cheap and keeps the hook dependency-free.
    Returns the number of blobs written.
    """
    if not store_enabled():
        return 0
    decoded = getattr(trace, "_decoded_cache", None)
    if decoded is None or not decoded.sched_sync:
        return 0
    published = 0
    for directory, version, trace_digest, cfg_key in list(decoded.sched_sync):
        store = ScheduleStore(directory, version=version)
        published += publish_schedules(store, trace, trace_digest, cfg_key)
    return published
