"""Run harness: one workload on one memory system.

The experiment modules and benchmarks compose everything through
:func:`run_workload` (a single simulation) and :func:`run_suite` (a sweep of
workloads over a set of configurations), so they never have to repeat the
core/memory-system wiring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.cpu.core import CoreConfig, OoOCore
from repro.cpu.trace import Trace
from repro.cpu.workloads import WorkloadSpec, generate_trace
from repro.sim.memsys import MemorySystem
from repro.sim.stats import harmonic_mean

SystemBuilder = Callable[[], MemorySystem]

def _resident_addresses(trace: Trace) -> List[int]:
    """Addresses of the trace that belong to the resident working set.

    Streaming and cold accesses (``Instruction.transient``) are excluded:
    they would also be absent from a warm cache at the start of a SimPoint,
    so they take their compulsory misses during the measured run — exactly
    as in the paper's methodology.
    """
    return [
        instruction.addr
        for instruction in trace
        if instruction.kind.is_memory and not instruction.transient
    ]


@dataclass
class RunResult:
    """Outcome of simulating one workload on one memory system."""

    system: str
    workload: str
    category: str
    ipc: float
    cycles: float
    instructions: float
    activity: Dict[str, float] = field(default_factory=dict)
    core_stats: Dict[str, float] = field(default_factory=dict)

    def activity_value(self, key: str) -> float:
        return self.activity.get(key, 0.0)


def run_workload(
    system_builder: SystemBuilder,
    spec: WorkloadSpec,
    num_instructions: int,
    core_config: Optional[CoreConfig] = None,
    trace: Optional[Trace] = None,
    prewarm: bool = True,
) -> RunResult:
    """Simulate ``spec`` (or a pre-generated ``trace``) on a fresh system.

    With ``prewarm`` (the default) the hierarchy's arrays are functionally
    warmed with the trace's own address stream before the timed run, the
    stand-in for the paper's 200-million-instruction warm-up.
    """
    system = system_builder()
    trace = trace or generate_trace(spec, num_instructions)
    if prewarm:
        system.prewarm(_resident_addresses(trace))
    core = OoOCore(trace, system, config=core_config)
    summary = core.run()
    return RunResult(
        system=system.name,
        workload=spec.name,
        category=spec.category,
        ipc=summary["ipc"],
        cycles=summary["cycles"],
        instructions=summary["instructions"],
        activity=system.activity(),
        core_stats=core.stats.as_dict(),
    )


def run_suite(
    system_builders: Dict[str, SystemBuilder],
    specs: Iterable[WorkloadSpec],
    num_instructions: int,
    core_config: Optional[CoreConfig] = None,
    prewarm: bool = True,
) -> List[RunResult]:
    """Run every workload on every configuration.

    Traces are generated once per workload and reused across configurations
    so all systems see the identical instruction stream (as the paper's
    SimPoints guarantee).
    """
    specs = list(specs)
    traces = {spec.name: generate_trace(spec, num_instructions) for spec in specs}
    results: List[RunResult] = []
    for system_name, builder in system_builders.items():
        for spec in specs:
            result = run_workload(
                builder,
                spec,
                num_instructions,
                core_config=core_config,
                trace=traces[spec.name],
                prewarm=prewarm,
            )
            result.system = system_name
            results.append(result)
    return results


def ipc_by_category(results: Iterable[RunResult]) -> Dict[str, Dict[str, float]]:
    """Harmonic-mean IPC per system and workload category.

    Returns ``{system: {"int": hmean, "fp": hmean}}`` — the quantity plotted
    in Figs. 4(a) and 5(a).
    """
    grouped: Dict[str, Dict[str, List[float]]] = {}
    for result in results:
        grouped.setdefault(result.system, {}).setdefault(result.category, []).append(result.ipc)
    return {
        system: {category: harmonic_mean(values) for category, values in categories.items()}
        for system, categories in grouped.items()
    }


def results_for_system(results: Iterable[RunResult], system: str) -> List[RunResult]:
    """Filter a result list down to one configuration."""
    return [result for result in results if result.system == system]
