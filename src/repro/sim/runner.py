"""Run harness: one workload on one memory system.

The experiment modules and benchmarks compose everything through
:func:`run_workload` (a single simulation) and :func:`run_suite` (a sweep of
workloads over a set of configurations), so they never have to repeat the
core/memory-system wiring.

Cycle semantics
===============

:func:`simulate` is the shared scheduler that drives one
:class:`~repro.cpu.core.OoOCore` plus its memory system to completion.  It
supports two modes that are guaranteed to produce **bit-identical**
results (cycle counts, IPC, every activity counter):

* ``mode="dense"`` — the classic lock-step loop: ``core.tick(c)`` then
  ``memsys.tick(c)`` for every cycle ``c``.
* ``mode="event"`` (the default) — after ticking at cycle ``c`` the
  scheduler asks the core for its next wakeup
  (:meth:`~repro.cpu.core.OoOCore.next_wakeup`) and the hierarchy for its
  next event (:meth:`~repro.sim.memsys.MemorySystem.next_event_cycle`) and
  jumps straight to the minimum of the two.  Every skipped cycle is
  provably a no-op for both sides; the only dense-mode effect of such a
  cycle — one stall-counter increment while the front end is blocked — is
  re-applied in bulk through
  :meth:`~repro.cpu.core.OoOCore.note_skipped_cycles`.

Skipping is what makes big sweeps affordable: while the core sits on a
60+-cycle memory miss and the hierarchy has nothing in flight, the dense
loop burns one Python call per component per cycle, whereas the event
kernel performs a single jump to the fill's completion cycle.

Busy spans are *batched* rather than skipped: the event loop hands each
instruction-bound stretch to :meth:`~repro.cpu.core.OoOCore.run_batch`,
which runs the dense-equivalent ticks in one pass and only ticks the
memory system at the cycles it declares through ``next_event_cycle``
(hierarchies with only deterministic drain work left declare none at all
and burst-replay it on their next observation — see
:mod:`repro.sim.memsys`).  Inside a batch the core tries its analytic
span engines before ticking: the memory-inclusive hierarchy engine
(:meth:`~repro.cpu.core.OoOCore._run_span_mem`, steady-state hit
streaks priced through the hierarchy's ``span_window`` view) and the
pure-ALU engine (:meth:`~repro.cpu.core.OoOCore._run_span`), both
clamped to the same ``next_event_cycle`` horizon so the hierarchy's
tick schedule is unchanged.  This loop never sees the engines — they
are invisible below ``run_batch`` — which is why the
``REPRO_NO_HIER_BATCH`` / ``REPRO_NO_SPAN_BATCH`` kill switches need no
scheduler cooperation.  Both modes enforce the ``max_cycles`` deadlock
guard identically: no cycle beyond the limit is ever simulated, and the
abort raises the same :class:`~repro.common.errors.SimulationError` from
either loop.

:func:`run_suite` compiles its sweep into a declarative
:class:`~repro.sim.plan.RunPlan` and hands it to the shared plan executor
(:func:`repro.sim.plan.execute`), which provides worker fan-out, the
file-backed trace pool, prewarm-snapshot cloning, and the content-addressed
result cache — every fast path bit-identical to the direct
:func:`run_workload` path.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.cpu.core import CoreConfig, OoOCore
from repro.cpu.trace import Trace
from repro.cpu.workloads import WorkloadSpec, generate_trace
from repro.sim.memsys import MemorySystem
from repro.sim.stats import harmonic_mean

SystemBuilder = Callable[[], MemorySystem]

def _resident_addresses(trace: Trace) -> List[int]:
    """Addresses of the trace that belong to the resident working set.

    Delegates to :meth:`repro.cpu.trace.Trace.resident_addresses`, which
    documents the warm-up methodology and caches the result.
    """
    return trace.resident_addresses()


@dataclass
class RunResult:
    """Outcome of simulating one workload on one memory system."""

    system: str
    workload: str
    category: str
    ipc: float
    cycles: float
    instructions: float
    activity: Dict[str, float] = field(default_factory=dict)
    core_stats: Dict[str, float] = field(default_factory=dict)

    def activity_value(self, key: str) -> float:
        return self.activity.get(key, 0.0)


def simulate(
    core: OoOCore,
    mode: str = "event",
    max_cycles: Optional[int] = None,
) -> Dict[str, float]:
    """Drive ``core`` and its memory system to completion.

    This is the shared scheduler described in the module docstring; both
    modes leave the core and hierarchy in identical final states.  Raises
    :class:`~repro.common.errors.SimulationError` when the run exceeds
    ``max_cycles`` (default: 400 cycles per instruction plus slack), which
    catches deadlocks in either mode.
    """
    if mode not in ("dense", "event"):
        raise ValueError(f"unknown simulation mode {mode!r}")
    memsys = core.memsys
    limit = max_cycles or (len(core.trace) * 400 + 100_000)

    finished = core.finished

    if mode == "dense":
        core_tick = core.tick
        mem_tick = memsys.tick
        while not finished():
            cycle = core.cycle
            # The deadlock guard fires before any cycle past ``limit`` is
            # simulated; the event loop below enforces the identical rule
            # (and raises the identical error) at its own advancement
            # points, so both modes abort at the same cycle.
            if cycle > limit:
                raise core.limit_exceeded(limit)
            core_tick(cycle)
            mem_tick(cycle)
            core.cycle = cycle + 1
        memsys.finalize(core.cycle)
        return core.summary()

    next_wakeup = core.next_wakeup
    next_event = memsys.next_event_cycle
    run_batch = core.run_batch
    while not finished():
        # Batched dispatch: run the whole busy span (dense-equivalent, with
        # memory-system ticks gated on its declared events) in one pass.
        # run_batch raises the shared deadlock-guard error before ticking
        # past ``limit`` and leaves core.cycle one past the last tick.
        cycle = run_batch(core.cycle, limit)
        if finished():
            break
        wakeup = next_wakeup(cycle)
        if wakeup == cycle + 1:
            # An event lands next cycle; re-enter the batch directly.
            continue
        event = next_event(cycle)
        if event is not None and (wakeup is None or event < wakeup):
            # Memory-only span: the hierarchy has events strictly before the
            # core's next wakeup, so advance it alone.  The core only needs
            # to be woken early if one of its in-flight loads completes; a
            # completing load is the only memory-side action that creates a
            # new core event (stores complete at issue time).
            watched = core.incomplete_loads()
            cur = event
            while True:
                if cur > limit:
                    # Same rule as dense mode: never simulate past the
                    # guard, even while only the hierarchy is advancing.
                    raise core.limit_exceeded(limit)
                memsys.tick(cur)
                if any(request.done for request in watched):
                    nxt = cur + 1
                    break
                event = next_event(cur)
                if event is None:
                    nxt = wakeup if wakeup is not None else cur + 1
                    break
                if wakeup is not None and event >= wakeup:
                    nxt = wakeup
                    break
                cur = event
        elif wakeup is not None:
            nxt = wakeup
        else:
            nxt = cycle + 1
        if nxt <= cycle:
            nxt = cycle + 1
        if nxt > limit + 1:
            # Dense mode would have died at the guard inside this span.
            raise core.limit_exceeded(limit)
        core.note_skipped_cycles(cycle, nxt)
        core.cycle = nxt
    memsys.finalize(core.cycle)
    return core.summary()


def run_workload(
    system_builder: SystemBuilder,
    spec: WorkloadSpec,
    num_instructions: int,
    core_config: Optional[CoreConfig] = None,
    trace: Optional[Trace] = None,
    prewarm: bool = True,
    mode: str = "event",
) -> RunResult:
    """Simulate ``spec`` (or a pre-generated ``trace``) on a fresh system.

    With ``prewarm`` (the default) the hierarchy's arrays are functionally
    warmed with the trace's own address stream before the timed run, the
    stand-in for the paper's 200-million-instruction warm-up.  ``mode``
    selects the scheduler (``"event"`` skips idle cycles, ``"dense"`` ticks
    every cycle); the results are bit-identical either way.
    """
    system = system_builder()
    trace = trace or generate_trace(spec, num_instructions)
    if prewarm:
        system.prewarm(_resident_addresses(trace))
    core = OoOCore(trace, system, config=core_config)
    summary = simulate(core, mode=mode)
    return RunResult(
        system=system.name,
        workload=spec.name,
        category=spec.category,
        ipc=summary["ipc"],
        cycles=summary["cycles"],
        instructions=summary["instructions"],
        activity=system.activity(),
        core_stats=core.stats.as_dict(),
    )


def run_suite(
    system_builders: Dict[str, SystemBuilder],
    specs: Iterable[WorkloadSpec],
    num_instructions: int,
    core_config: Optional[CoreConfig] = None,
    prewarm: bool = True,
    mode: str = "event",
    workers: Optional[int] = None,
    trace_factory: Optional[Callable] = None,
    traces: Optional[Dict[str, Trace]] = None,
    cache=None,
    pool=None,
    snapshots: bool = True,
    supervision=None,
    on_result: Optional[Callable] = None,
) -> List[RunResult]:
    """Run every workload on every configuration.

    Traces are generated once per workload and reused across configurations
    so all systems see the identical instruction stream (as the paper's
    SimPoints guarantee).  The sweep is compiled into a declarative
    :class:`~repro.sim.plan.RunPlan` and executed by
    :func:`repro.sim.plan.execute`; all of its fast paths (trace pool,
    prewarm snapshots, result cache) are bit-identical to calling
    :func:`run_workload` per pair.

    Args:
        mode: scheduler mode passed to every simulation.
        workers: when > 1 (and the platform supports ``fork``), the
            (system, workload) pairs are simulated on that many workers
            drawn from the process-wide persistent pool (reused across
            calls).  Each pair is fully independent, so the result list
            is identical to a sequential run, in the same order.
        trace_factory: ``(spec, num_instructions) -> Trace`` used to
            generate each workload's trace; defaults to the legacy
            :func:`generate_trace`.  The scenario engine passes
            :func:`repro.scenarios.build_trace` here.  ``specs`` may be
            any objects with ``name`` and ``category`` attributes that the
            factory understands.
        traces: pre-generated (e.g. replayed from binary capture) traces
            keyed by workload name; missing entries are generated with the
            factory.
        cache: a :class:`~repro.sim.plan.ResultCache` memoizing finished
            runs on disk; ``None`` (the default) simulates everything.
        pool: a :class:`~repro.sim.plan.TracePool` replaying traces from
            file-backed captures instead of re-synthesizing.
        snapshots: clone functionally-prewarmed hierarchy state across
            jobs sharing a (builder, trace) pair; ``False`` forces a fresh
            build-and-prewarm per job (the direct path).
        supervision: a :class:`~repro.sim.plan.SupervisionPolicy` tuning
            the worker path's retry/timeout/quarantine behaviour; ``None``
            uses the defaults.  In non-strict mode a permanently failing
            job is quarantined and *excluded* from the returned list (with
            a :class:`RuntimeWarning` describing it) instead of aborting
            the sweep.
        on_result: streaming hook called with ``(job, result)`` as each
            run completes (cache hit, journal restore, or simulation).
    """
    from repro.sim import plan as plan_module

    compiled = plan_module.compile_sweep(
        system_builders,
        specs,
        num_instructions,
        core_config=core_config,
        prewarm=prewarm,
        mode=mode,
        trace_factory=trace_factory,
        traces=traces,
    )
    run = plan_module.execute(
        compiled, workers=workers, cache=cache, pool=pool, snapshots=snapshots,
        supervision=supervision, on_result=on_result,
    )
    if run.failures:
        described = "; ".join(failure.describe() for failure in run.failures)
        warnings.warn(
            f"run_suite: {len(run.failures)} job(s) quarantined and excluded "
            f"from results: {described}",
            RuntimeWarning,
            stacklevel=2,
        )
        return [result for result in run.results if result is not None]
    return run.results


def ipc_by_category(results: Iterable[RunResult]) -> Dict[str, Dict[str, float]]:
    """Harmonic-mean IPC per system and workload category.

    Returns ``{system: {"int": hmean, "fp": hmean}}`` — the quantity plotted
    in Figs. 4(a) and 5(a).

    Runs with non-positive IPC (aborted or zero-committed runs) have no
    harmonic mean; instead of letting one such run crash the aggregation of
    a whole figure, they are excluded from their group's mean and reported
    through a :class:`RuntimeWarning` naming each excluded run.  A group
    whose every run was excluded aggregates to 0.0.
    """
    grouped: Dict[str, Dict[str, List[float]]] = {}
    excluded: List[str] = []
    for result in results:
        categories = grouped.setdefault(result.system, {})
        values = categories.setdefault(result.category, [])
        if result.ipc <= 0:
            excluded.append(f"{result.system}/{result.workload}")
            continue
        values.append(result.ipc)
    if excluded:
        warnings.warn(
            f"ipc_by_category: excluded {len(excluded)} zero-IPC run(s) from the "
            f"harmonic mean: {', '.join(excluded)}",
            RuntimeWarning,
            stacklevel=2,
        )
    return {
        system: {category: harmonic_mean(values) for category, values in categories.items()}
        for system, categories in grouped.items()
    }


def results_for_system(results: Iterable[RunResult], system: str) -> List[RunResult]:
    """Filter a result list down to one configuration."""
    return [result for result in results if result.system == system]
