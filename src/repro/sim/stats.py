"""Statistics collection.

Every component in the simulator owns a :class:`Stats` object.  A ``Stats``
object is a flat mapping of counter names to numeric values plus a small set
of helpers (ratios, histograms, merging).  Keeping statistics flat and
string-keyed makes it trivial for the experiment harness to assemble the
exact rows the paper reports without each component needing to know about
tables and figures.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Mapping


class Stats:
    """A flat bag of named counters.

    Counters spring into existence at zero the first time they are
    incremented, mirroring how hardware performance counters are typically
    exposed by simulators.
    """

    __slots__ = ("name", "_counters")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._counters: Dict[str, float] = defaultdict(float)

    # -- basic counter operations -------------------------------------------------
    def incr(self, key: str, amount: float = 1.0) -> None:
        """Increment counter ``key`` by ``amount``."""
        self._counters[key] += amount

    def set(self, key: str, value: float) -> None:
        """Set counter ``key`` to ``value``, overwriting any previous value."""
        self._counters[key] = value

    def get(self, key: str, default: float = 0.0) -> float:
        """Return the value of counter ``key`` (``default`` if never touched)."""
        return self._counters.get(key, default)

    def __getitem__(self, key: str) -> float:
        return self._counters.get(key, 0.0)

    def __contains__(self, key: str) -> bool:
        return key in self._counters

    def keys(self) -> Iterable[str]:
        return self._counters.keys()

    def as_dict(self) -> Dict[str, float]:
        """Return a plain ``dict`` copy of all counters."""
        return dict(self._counters)

    # -- derived values ----------------------------------------------------------
    def ratio(self, numerator: str, denominator: str) -> float:
        """Return ``numerator / denominator``, or 0.0 when the denominator is 0."""
        denom = self.get(denominator)
        if denom == 0:
            return 0.0
        return self.get(numerator) / denom

    def merge(self, other: "Stats", prefix: str = "") -> None:
        """Add every counter of ``other`` into this object.

        Args:
            other: statistics to fold in.
            prefix: optional prefix prepended to each key, used when merging
                per-component statistics into a system-wide view.
        """
        for key, value in other._counters.items():
            self._counters[prefix + key] += value

    def reset(self) -> None:
        """Zero every counter."""
        self._counters.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self._counters.items()))
        return f"Stats({self.name!r}, {inner})"


class Histogram:
    """A simple integer-bucketed histogram.

    Used for latency distributions (for example the transport latency of
    L-NUCA hits, which Table III summarises through its mean and minimum).
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._buckets: Dict[int, int] = defaultdict(int)

    def add(self, value: int, count: int = 1) -> None:
        """Record ``count`` samples of ``value``."""
        self._buckets[int(value)] += count

    @property
    def total_samples(self) -> int:
        return sum(self._buckets.values())

    @property
    def total_value(self) -> int:
        return sum(value * count for value, count in self._buckets.items())

    def mean(self) -> float:
        """Return the arithmetic mean of all recorded samples (0 if empty)."""
        samples = self.total_samples
        if samples == 0:
            return 0.0
        return self.total_value / samples

    def minimum(self) -> int:
        """Return the smallest recorded value (0 if empty)."""
        if not self._buckets:
            return 0
        return min(self._buckets)

    def maximum(self) -> int:
        """Return the largest recorded value (0 if empty)."""
        if not self._buckets:
            return 0
        return max(self._buckets)

    def as_dict(self) -> Dict[int, int]:
        return dict(self._buckets)

    def percentile(self, fraction: float) -> int:
        """Return the smallest value v such that >= ``fraction`` of samples are <= v."""
        if not self._buckets:
            return 0
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        threshold = fraction * self.total_samples
        running = 0
        for value in sorted(self._buckets):
            running += self._buckets[value]
            if running >= threshold:
                return value
        return max(self._buckets)


def harmonic_mean(values: Iterable[float]) -> float:
    """Return the harmonic mean of ``values``.

    The paper reports IPC as a harmonic mean over benchmarks (Figs. 4(a) and
    5(a)); zero or negative entries are rejected because they have no
    harmonic mean.
    """
    values = list(values)
    if not values:
        return 0.0
    for value in values:
        if value <= 0:
            raise ValueError("harmonic mean requires strictly positive values")
    return len(values) / sum(1.0 / value for value in values)


def geometric_mean(values: Iterable[float]) -> float:
    """Return the geometric mean of ``values`` (used in ablation reports)."""
    values = list(values)
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError("geometric mean requires strictly positive values")
        product *= value
    return product ** (1.0 / len(values))


def weighted_mean(pairs: Mapping[str, float], weights: Mapping[str, float]) -> float:
    """Return the weighted arithmetic mean of ``pairs`` using ``weights``."""
    total_weight = sum(weights.get(key, 0.0) for key in pairs)
    if total_weight == 0:
        return 0.0
    return sum(value * weights.get(key, 0.0) for key, value in pairs.items()) / total_weight
