"""Deterministic fault injection for the sweep execution layer.

The supervised executor in :mod:`repro.sim.plan` promises to survive
worker crashes, hangs, garbage results, and corrupted on-disk state.
Those paths must be *provable*, not hoped for, so this module lets tests
(and the CI fault-injection job) make a chosen worker fail at a chosen
point, deterministically:

* a :class:`FaultPlan` is a list of :class:`FaultSpec`\\ s, each naming a
  **site** (where in the executor the fault fires), an **op** (what
  happens), and match fields (which occurrence it hits);
* the executor calls the site hooks below at every interesting point;
  with no plan active every hook is a near-free early return, so
  production runs pay nothing;
* plans come from the ``REPRO_FAULT_PLAN`` environment variable (a JSON
  object, or a path to a JSON file — read once per process and inherited
  by forked workers) or from the test API (:func:`install` /
  :func:`reset`, which takes precedence over the environment).

Sites and their ops
===================

``worker-job``
    Fires right before a job runs on a pool worker.  The *supervisor*
    matches the spec (:func:`worker_job_action`) and ships the action
    with the job payload, so a freshly installed plan reaches workers
    that were forked long before it — the persistent pool never relies
    on fork-time plan inheritance.  Matched by ``job`` (the
    ``"system/trace"`` label), ``nth`` (the job's stable position in the
    sweep's pending list), and ``attempt`` (0-based dispatch attempt).
    Ops: ``crash`` (``os._exit``), ``hang`` (sleep ``seconds``),
    ``garbage`` (reply with a non-result payload), ``error`` (raise a
    retryable ``RuntimeError``), ``fatal-error`` (raise a deterministic
    :class:`~repro.common.errors.SimulationError`).
``commit``
    Fires in the committing process after a finished result has been
    written to the cache and journal.  Matched by ``nth`` (per-process
    commit counter).  Op ``exit`` SIGKILLs the process — the way tests
    interrupt a sweep mid-flight to exercise checkpoint-resume.
``spawn``
    Fires when the supervisor acquires a worker — a fresh fork *or* a
    reused pool worker (so the spawn-degradation path stays testable
    when idle workers happen to exist).  Op ``error`` raises ``OSError``,
    exercising the degrade-to-in-process path.
``worker-recycle``
    Fires when the supervisor returns a worker to the persistent pool.
    Matched by ``nth`` (per-process release counter).  Op ``kill``
    discards the worker instead of pooling it, exercising the
    recycle-and-respawn path without a real crash.
``result-cache`` / ``trace-pool`` / ``journal`` / ``store`` / ``snapshot-store`` / ``schedule-store``
    Fire after the respective file has been written (``store`` is the
    SQLite result store, fired after each row insert commits;
    ``snapshot-store`` is the on-disk prewarm blob store;
    ``schedule-store`` is the persistent analytic-schedule store).  Matched
    by ``nth`` (per-site write counter) and ``path`` (substring).  Ops
    ``corrupt`` (overwrite the head with garbage bytes), ``truncate``
    (halve the file), ``delete``.  File sites fire in the process that
    performs the write; pool workers run with no plan installed, so
    worker-side writes are disturbed by corrupting the file from the
    test process instead.
``snapshot-blob``
    Fires when a prewarm snapshot blob is stored.  Op ``corrupt``
    replaces the pickle with garbage, exercising the rebuild-on-corrupt
    recovery.

A plan may also carry a ``policy`` object whose keys override the
active :class:`~repro.sim.plan.SupervisionPolicy` (``job_timeout``,
``max_retries``, ``backoff_base``) so fault runs can use tight timeouts
without touching the code under test.

Example plan (the CI fault-injection job's)::

    {"policy": {"job_timeout": 15.0, "backoff_base": 0.01},
     "faults": [
       {"site": "worker-job", "op": "crash", "nth": 0, "attempt": 0},
       {"site": "worker-job", "op": "hang",  "nth": 1, "attempt": 0}]}
"""

from __future__ import annotations

import json
import os
import signal
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Exit code of an injected worker crash (recognizable in waitpid status).
CRASH_EXIT_CODE = 173

#: Bytes written over a file's head by the ``corrupt`` op.
_CORRUPT_BYTES = b"\x00\x00repro-injected-corruption\x00\x00"


@dataclass
class FaultSpec:
    """One injected fault: where it fires, what it does, what it matches."""

    site: str
    op: str
    job: Optional[str] = None  #: "system/trace" label (worker-job only)
    nth: Optional[int] = None  #: site-specific occurrence number (0-based)
    attempt: Optional[int] = None  #: 0-based dispatch attempt (worker-job only)
    path: Optional[str] = None  #: substring of the written path (file sites)
    times: Optional[int] = None  #: max firings (``None`` = unlimited)
    seconds: float = 3600.0  #: sleep duration of the ``hang`` op
    fired: int = 0  #: firings so far (mutated by matching)

    def matches(self, *, job=None, nth=None, attempt=None, path=None) -> bool:
        if self.times is not None and self.fired >= self.times:
            return False
        if self.job is not None and self.job != job:
            return False
        if self.nth is not None and self.nth != nth:
            return False
        if self.attempt is not None and self.attempt != attempt:
            return False
        if self.path is not None and self.path not in (path or ""):
            return False
        return True


@dataclass
class FaultPlan:
    """A set of fault specs plus optional supervision-policy overrides."""

    specs: List[FaultSpec] = field(default_factory=list)
    policy: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultPlan":
        specs = [FaultSpec(**spec) for spec in payload.get("faults", [])]
        policy = dict(payload.get("policy", {}))
        return cls(specs=specs, policy=policy)


_UNSET = object()
_installed: object = _UNSET  # test-API plan; _UNSET = fall back to the env
_env_plan: Optional[FaultPlan] = None
_env_loaded = False
_counters: Dict[str, int] = {}


def install(plan: Optional[FaultPlan]) -> None:
    """Activate ``plan`` for this process (and workers forked after this).

    Takes precedence over ``REPRO_FAULT_PLAN``; ``install(FaultPlan())``
    (an empty plan) therefore *disables* an environment-supplied plan.
    Site counters restart so occurrence matching is deterministic per
    installation.
    """
    global _installed
    _installed = plan
    _counters.clear()


def reset() -> None:
    """Drop any installed plan and re-read the environment on next use."""
    global _installed, _env_plan, _env_loaded
    _installed = _UNSET
    _env_plan = None
    _env_loaded = False
    _counters.clear()


def active() -> Optional[FaultPlan]:
    """The plan in effect: the installed one, else ``REPRO_FAULT_PLAN``."""
    global _env_plan, _env_loaded
    if _installed is not _UNSET:
        return _installed  # type: ignore[return-value]
    if not _env_loaded:
        _env_loaded = True
        raw = os.environ.get("REPRO_FAULT_PLAN")
        if raw:
            try:
                text = raw
                if not raw.lstrip().startswith("{"):
                    with open(raw, "r", encoding="utf-8") as handle:
                        text = handle.read()
                _env_plan = FaultPlan.from_dict(json.loads(text))
            except (OSError, ValueError, KeyError, TypeError) as exc:
                # A malformed plan must never break a real run; fault
                # injection is opt-in test machinery.
                warnings.warn(
                    f"REPRO_FAULT_PLAN ignored ({exc})", RuntimeWarning, stacklevel=2
                )
    return _env_plan


def policy_overrides() -> Dict[str, float]:
    """Supervision-policy overrides carried by the active plan."""
    plan = active()
    return dict(plan.policy) if plan is not None else {}


def _match(site: str, **fields) -> Optional[FaultSpec]:
    plan = active()
    if plan is None:
        return None
    for spec in plan.specs:
        if spec.site == site and spec.matches(**fields):
            spec.fired += 1
            return spec
    return None


def _next(site: str) -> int:
    value = _counters.get(site, 0)
    _counters[site] = value + 1
    return value


# ------------------------------------------------------------------ site hooks
def worker_job_action(label: str, seq: int, attempt: int) -> Optional[Tuple[str, float]]:
    """Match a worker-job fault without executing it.

    Called by the *supervisor* at dispatch time; the returned
    ``(op, seconds)`` rides in the job payload and is applied by the
    worker (:func:`apply_worker_action`).  Matching in the parent keeps
    the occurrence counters in one process, so plans installed after the
    pool spawned still hit deterministically.
    """
    spec = _match("worker-job", job=label, nth=seq, attempt=attempt)
    if spec is None:
        return None
    return (spec.op, spec.seconds)


def apply_worker_action(action: Optional[Tuple[str, float]], label: str) -> Optional[str]:
    """Execute a shipped worker-job fault action inside the worker.

    Returns ``"garbage"`` when the worker should reply with a corrupt
    payload; may not return at all (``crash``), or may sleep (``hang``)
    or raise (``error`` / ``fatal-error``).
    """
    if action is None:
        return None
    op, seconds = action
    if op == "crash":
        os._exit(CRASH_EXIT_CODE)
    if op == "hang":
        time.sleep(seconds)
        return None
    if op == "garbage":
        return "garbage"
    if op == "error":
        raise RuntimeError(f"injected fault: transient error in {label}")
    if op == "fatal-error":
        from repro.common.errors import SimulationError

        raise SimulationError(f"injected fault: deterministic error in {label}")
    return None


def worker_job(label: str, seq: int, attempt: int) -> Optional[str]:
    """Match *and* execute a worker-job fault in the calling process."""
    return apply_worker_action(worker_job_action(label, seq, attempt), label)


def on_worker_recycle() -> bool:
    """Called when a worker is about to return to the persistent pool.

    Returns True when the worker must be discarded (killed) instead of
    pooled — the injected stand-in for an unhealthy-but-alive worker.
    """
    if active() is None:
        return False
    spec = _match("worker-recycle", nth=_next("worker-recycle"))
    return spec is not None and spec.op == "kill"


def on_commit() -> None:
    """Called after a finished result has been committed (cache+journal)."""
    if active() is None:
        return
    spec = _match("commit", nth=_next("commit"))
    if spec is not None and spec.op == "exit":
        # The most brutal interruption there is: no atexit, no finally.
        os.kill(os.getpid(), signal.SIGKILL)


def on_spawn() -> None:
    """Called when the supervisor is about to fork a worker."""
    if active() is None:
        return
    spec = _match("spawn", nth=_next("spawn"))
    if spec is not None and spec.op == "error":
        raise OSError("injected fault: worker spawn failure")


def on_write(site: str, path: str) -> None:
    """Called after ``path`` has been written at a file site."""
    if active() is None:
        return
    spec = _match(site, nth=_next(site), path=path)
    if spec is None:
        return
    try:
        if spec.op == "delete":
            os.remove(path)
        elif spec.op == "truncate":
            size = os.path.getsize(path)
            with open(path, "r+b") as handle:
                handle.truncate(size // 2)
        elif spec.op == "corrupt":
            with open(path, "r+b") as handle:
                handle.write(_CORRUPT_BYTES)
    except OSError:  # pragma: no cover - the file vanished underneath us
        pass


def mangle_blob(blob: bytes) -> bytes:
    """Called when a prewarm snapshot blob is stored; may corrupt it."""
    if active() is None:
        return blob
    spec = _match("snapshot-blob", nth=_next("snapshot-blob"))
    if spec is not None and spec.op == "corrupt":
        return _CORRUPT_BYTES + blob[len(_CORRUPT_BYTES):]
    return blob
