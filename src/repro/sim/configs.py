"""Paper configuration presets (Table I) and system builders.

Every experiment and benchmark builds its cache hierarchies through the
functions in this module, so the architectural parameters of Table I live
in exactly one place:

* ``l1_config`` / ``l2_config`` / ``l3_config`` — the conventional levels;
* ``build_conventional_hierarchy`` — the L2-256KB baseline (Fig. 1(a));
* ``build_lnuca_l3_hierarchy`` — LN2/LN3/LN4 in front of the 8 MB L3
  (Fig. 1(b));
* ``build_dnuca_hierarchy`` — the DN-4x8 baseline (Fig. 1(c));
* ``build_lnuca_dnuca_hierarchy`` — LNx + DN-4x8 (Fig. 1(d));
* ``build_accountant`` — the matching Table I energy model for any of the
  four system types.

For the declarative run-plan layer (:mod:`repro.sim.plan`) the four system
types are also exposed as *digestable* :class:`BuilderSpec`\\ s
(``conventional_spec`` / ``lnuca_l3_spec`` / ``dnuca_spec`` /
``lnuca_dnuca_spec``): a builder plus a canonical parameter description
whose digest keys the content-addressed result cache and the prewarm
snapshot store.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Optional

from repro.cache.cache import CacheConfig, TimedCache
from repro.cache.hierarchy import ConventionalHierarchy
from repro.cache.memory import MainMemory, MainMemoryConfig
from repro.common.errors import ConfigurationError
from repro.core.config import LNUCAConfig, default_rtile_config
from repro.core.lnuca import LightNUCA
from repro.dnuca.dnuca import DNUCACache, DNUCAConfig
from repro.dnuca.system import DNUCASystem
from repro.energy.accounting import (
    GROUP_DYNAMIC,
    GROUP_L1_RT,
    GROUP_L2_RESTT,
    GROUP_L3_DNUCA,
    EnergyAccountant,
)
from repro.energy.orion import RouterEnergyModel
from repro.sim.memsys import MemorySystem

#: Cycle time of the modelled core: 19 FO4 at 32 nm, comparable to the
#: 3.33 GHz Core 2 Duo E8600 the paper references.
CYCLE_TIME_NS = 0.30

#: Bump when the meaning of a builder key / parameter set changes in a way
#: the parameters themselves do not capture, so old cache entries cannot be
#: misattributed to the new architecture.  (Code changes are covered by the
#: simulator version in the cache key, not by this.)
BUILDER_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class BuilderSpec:
    """A system builder plus the canonical description that identifies it.

    ``params`` is a canonical JSON string of everything that architecturally
    distinguishes the built system (or ``None`` for ad-hoc builders — e.g.
    raw lambdas handed to ``run_suite`` — which then run uncached).  The
    spec is callable, so every API that accepted a plain builder callable
    accepts a ``BuilderSpec`` unchanged.
    """

    key: str
    factory: Callable[[], MemorySystem]
    params: Optional[str] = None

    def __call__(self) -> MemorySystem:
        return self.factory()

    def digest(self) -> Optional[str]:
        """Content digest of the builder identity; ``None`` when ad hoc."""
        if self.params is None:
            return None
        payload = f"builder/{BUILDER_SCHEMA_VERSION}/{self.key}/{self.params}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _canonical(value):
    """Canonicalise ``value`` into JSON-serializable plain data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _canonical(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(key): _canonical(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise ConfigurationError(
        f"builder parameter of type {type(value).__name__} has no canonical form"
    )


def builder_spec(key: str, factory: Callable[[], MemorySystem], **params) -> BuilderSpec:
    """Wrap ``factory`` as a digestable :class:`BuilderSpec`.

    ``params`` must fully determine what ``factory`` builds; they are
    canonicalised (dataclasses and tuples included) into the digest.
    """
    blob = json.dumps(_canonical(params), sort_keys=True)
    return BuilderSpec(key=key, factory=factory, params=blob)

# Dynamic energies for tag-only probes, as a fraction of a full read.
_TAG_PROBE_FRACTION = 0.35


# --------------------------------------------------------------------------- level configs
def l1_config() -> CacheConfig:
    """L1 data cache / r-tile: 32 KB, 4-way, 32 B, 2-cycle, write-through."""
    return CacheConfig(
        name="L1",
        size_bytes=32 * 1024,
        associativity=4,
        block_size=32,
        completion_cycles=2,
        initiation_cycles=1,
        ports=2,
        write_policy="write_through",
        access_mode="parallel",
        mshr_entries=16,
        mshr_secondary=4,
        write_buffer_entries=32,
        read_energy_pj=21.2,
        leakage_mw=12.8,
    )


def l2_config(size_kb: int = 256) -> CacheConfig:
    """L2: 256 KB, 8-way, 64 B, serial access, 4-cycle completion, copy-back."""
    return CacheConfig(
        name="L2",
        size_bytes=size_kb * 1024,
        associativity=8,
        block_size=64,
        completion_cycles=4,
        initiation_cycles=2,
        ports=1,
        write_policy="copy_back",
        access_mode="serial",
        mshr_entries=16,
        mshr_secondary=4,
        write_buffer_entries=32,
        read_energy_pj=47.2,
        leakage_mw=66.9,
    )


def l3_config() -> CacheConfig:
    """L3: 8 MB, 16-way, 128 B, 20-cycle completion, 15-cycle initiation.

    The 15-cycle initiation interval of Table I is interpreted per bank; an
    Intel-Core-2-class 8 MB cache is interleaved over several banks, so the
    timing model exposes four of them (``ports=4``) to keep the sustained
    throughput realistic while individual accesses still pay the Table I
    latencies.
    """
    return CacheConfig(
        name="L3",
        size_bytes=8 * 1024 * 1024,
        associativity=16,
        block_size=128,
        completion_cycles=20,
        initiation_cycles=15,
        ports=4,
        write_policy="copy_back",
        access_mode="serial",
        mshr_entries=8,
        mshr_secondary=4,
        write_buffer_entries=32,
        read_energy_pj=20.9,
        leakage_mw=600.0,
    )


def main_memory_config() -> MainMemoryConfig:
    """Main memory: 200-cycle first chunk, 4-cycle inter-chunk, 16 B wires."""
    return MainMemoryConfig(first_chunk_cycles=200, inter_chunk_cycles=4, chunk_bytes=16)


def dnuca_config() -> DNUCAConfig:
    """DN-4x8: 8 MB, 8 sparse sets x 4 rows of 256 KB 2-way 128 B banks."""
    return DNUCAConfig()


# --------------------------------------------------------------------------- systems
def build_conventional_hierarchy(l2_size_kb: int = 256) -> ConventionalHierarchy:
    """The three-level baseline: L1-32KB / L2 / L3-8MB / memory."""
    levels = [
        TimedCache(l1_config()),
        TimedCache(l2_config(l2_size_kb)),
        TimedCache(l3_config()),
    ]
    return ConventionalHierarchy(
        levels, MainMemory(main_memory_config()), name=f"L2-{l2_size_kb}KB"
    )


def build_lnuca_l3_hierarchy(levels: int, **overrides) -> LightNUCA:
    """An LN``levels`` L-NUCA backed by the 8 MB L3 (Fig. 1(b))."""
    backside = ConventionalHierarchy(
        [TimedCache(l3_config())],
        MainMemory(main_memory_config()),
        name="L3-backside",
        extra_bus_hops=1,
    )
    config = LNUCAConfig(levels=levels, rtile=default_rtile_config(), **overrides)
    return LightNUCA(config, backside)


def build_dnuca_hierarchy() -> DNUCASystem:
    """The DN-4x8 baseline: L1-32KB in front of the 8 MB D-NUCA (Fig. 1(c))."""
    return DNUCASystem(
        dnuca=DNUCACache(dnuca_config()),
        memory=MainMemory(main_memory_config()),
        l1=TimedCache(l1_config()),
        name="DN-4x8",
    )


def build_lnuca_dnuca_hierarchy(levels: int, **overrides) -> LightNUCA:
    """LN``levels`` + DN-4x8: an L-NUCA whose backside is the D-NUCA (Fig. 1(d))."""
    backside = DNUCASystem(
        dnuca=DNUCACache(dnuca_config()),
        memory=MainMemory(main_memory_config()),
        l1=None,
        name="DN-4x8-backside",
    )
    config = LNUCAConfig(levels=levels, rtile=default_rtile_config(), **overrides)
    system = LightNUCA(config, backside)
    system.stats.set("plus_dnuca", 1.0)
    return system


# --------------------------------------------------------------------------- builder specs
def conventional_spec(l2_size_kb: int = 256) -> BuilderSpec:
    """:func:`build_conventional_hierarchy` as a digestable spec.

    The factory is a :func:`functools.partial` of the module-level builder
    (not a lambda) so the spec pickles by reference: the persistent worker
    pool ships :class:`BuilderSpec`\\ s to already-running processes instead
    of relying on fork-time memory inheritance.
    """
    return builder_spec(
        f"conventional:l2={l2_size_kb}KB",
        functools.partial(build_conventional_hierarchy, l2_size_kb),
        l2_size_kb=l2_size_kb,
    )


def lnuca_l3_spec(levels: int, **overrides) -> BuilderSpec:
    """:func:`build_lnuca_l3_hierarchy` as a digestable spec.

    ``overrides`` are the :class:`~repro.core.config.LNUCAConfig` keyword
    overrides the ablations use (``routing_policy``, ``buffer_depth``,
    ``tile`` ...); they are canonicalised into the digest.
    """
    return builder_spec(
        f"lnuca-l3:levels={levels}",
        functools.partial(build_lnuca_l3_hierarchy, levels, **overrides),
        levels=levels,
        **overrides,
    )


def dnuca_spec() -> BuilderSpec:
    """:func:`build_dnuca_hierarchy` as a digestable spec."""
    return builder_spec("dnuca:4x8", build_dnuca_hierarchy)


def lnuca_dnuca_spec(levels: int, **overrides) -> BuilderSpec:
    """:func:`build_lnuca_dnuca_hierarchy` as a digestable spec."""
    return builder_spec(
        f"lnuca-dnuca:levels={levels}",
        functools.partial(build_lnuca_dnuca_hierarchy, levels, **overrides),
        levels=levels,
        **overrides,
    )


# --------------------------------------------------------------------------- energy models
def _add_l1_dynamic(accountant: EnergyAccountant, prefix: str, energy_pj: float) -> None:
    accountant.add_dynamic(f"{prefix}.read_accesses", energy_pj)
    accountant.add_dynamic(f"{prefix}.write_accesses", energy_pj)
    accountant.add_dynamic(f"{prefix}.fills", energy_pj)


def build_accountant(system: MemorySystem) -> EnergyAccountant:
    """Return the Table I energy model matching ``system``'s composition."""
    router = RouterEnergyModel()
    accountant = EnergyAccountant(cycle_time_ns=CYCLE_TIME_NS, name=f"energy[{system.name}]")

    if isinstance(system, ConventionalHierarchy):
        accountant.add_static("L1", GROUP_L1_RT, l1_config().leakage_mw)
        accountant.add_static("L2", GROUP_L2_RESTT, l2_config().leakage_mw)
        accountant.add_static("L3", GROUP_L3_DNUCA, l3_config().leakage_mw)
        _add_l1_dynamic(accountant, "L1", l1_config().read_energy_pj)
        _add_l1_dynamic(accountant, "L2", l2_config().read_energy_pj)
        _add_l1_dynamic(accountant, "L3", l3_config().read_energy_pj)
        return accountant

    if isinstance(system, DNUCASystem):
        cfg = system.dnuca.config
        accountant.add_static("L1", GROUP_L1_RT, l1_config().leakage_mw)
        accountant.add_static(
            "DNUCA-banks", GROUP_L3_DNUCA, cfg.leakage_mw_per_bank, count=cfg.num_banks
        )
        _add_l1_dynamic(accountant, "L1", l1_config().read_energy_pj)
        _register_dnuca_dynamic(accountant, system.dnuca, router)
        return accountant

    if isinstance(system, LightNUCA):
        lnuca_cfg = system.config
        accountant.add_static("L1-RT", GROUP_L1_RT, lnuca_cfg.rtile.leakage_mw)
        accountant.add_static(
            "tiles", GROUP_L2_RESTT, lnuca_cfg.tile.leakage_mw, count=lnuca_cfg.num_tiles
        )
        _add_l1_dynamic(accountant, "L1-RT", lnuca_cfg.rtile.read_energy_pj)
        tile_read = lnuca_cfg.tile.read_energy_pj
        accountant.add_dynamic("tiles.search_lookups", tile_read * _TAG_PROBE_FRACTION)
        accountant.add_dynamic("tiles.hits", tile_read * (1.0 - _TAG_PROBE_FRACTION))
        accountant.add_dynamic("tiles.fills", lnuca_cfg.tile.write_energy_pj)
        hop = router.lnuca_hop_energy_pj()
        accountant.add_dynamic("transport_net.link_traversals", hop)
        accountant.add_dynamic("replacement_net.link_traversals", hop)
        accountant.add_dynamic("search_net.link_traversals", router.search_hop_energy_pj())
        backside = system.backside
        if isinstance(backside, DNUCASystem):
            cfg = backside.dnuca.config
            accountant.add_static(
                "DNUCA-banks", GROUP_L3_DNUCA, cfg.leakage_mw_per_bank, count=cfg.num_banks
            )
            _register_dnuca_dynamic(accountant, backside.dnuca, router)
        elif isinstance(backside, ConventionalHierarchy):
            accountant.add_static("L3", GROUP_L3_DNUCA, l3_config().leakage_mw)
            _add_l1_dynamic(accountant, "L3", l3_config().read_energy_pj)
        else:
            raise ConfigurationError(
                f"no energy model for backside of type {type(backside).__name__}"
            )
        return accountant

    raise ConfigurationError(f"no energy model for system of type {type(system).__name__}")


def _register_dnuca_dynamic(
    accountant: EnergyAccountant, dnuca: DNUCACache, router: RouterEnergyModel
) -> None:
    cfg = dnuca.config
    name = dnuca.name
    accountant.add_dynamic(f"{name}.bank_lookups", cfg.read_energy_pj * _TAG_PROBE_FRACTION)
    accountant.add_dynamic(f"{name}.hits", cfg.read_energy_pj * (1.0 - _TAG_PROBE_FRACTION))
    accountant.add_dynamic(f"{name}.fills", cfg.write_energy_pj)
    accountant.add_dynamic(f"{name}.promotions", 2.0 * cfg.read_energy_pj)
    accountant.add_dynamic(f"{name}.mesh.link_traversals", router.dnuca_hop_energy_pj())
