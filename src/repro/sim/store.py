"""Queryable SQLite store of completed simulation results.

The :class:`~repro.sim.plan.ResultCache` answers exactly one question —
"has this exact job already run?" — in one ``open()``.  The
:class:`ResultStore` is the analytical tier behind it: one SQLite row per
completed job, carrying the full digest provenance (builder digest, trace
content digest, simulator version, run parameters), the headline numbers
(cycles, IPC, instructions) as indexed columns, and the complete
:class:`~repro.sim.runner.RunResult` as JSON.  That makes the corpus of
finished work *queryable* — filter by hierarchy label, workload,
scenario tag, or simulator version; compare two versions row by row —
while preserving the repository's core contract: a store-served result
is **byte-identical** to the fresh simulation's, because reconstruction
goes through the same ``_result_to_row``/``_result_from_row`` pair the
cache and journal use.

Placement in the lookup ladder (see :func:`repro.sim.plan.execute`):
cache hit → journal restore → **store hit** → in-flight adoption →
simulation.  Every landed result is fed back, so the store converges on
everything the process has ever computed; ``repro store ingest`` ETLs
pre-existing cache entries and abandoned sweep journals in bulk.

Robustness rules, matching the cache's:

* All writes are ``INSERT OR IGNORE`` keyed by the content-addressed
  cache key — first writer wins, concurrent writers (WAL mode, per-thread
  connections, busy timeout) never corrupt each other.
* A corrupt database file is never trusted and never fatal: the file is
  set aside as ``<path>.corrupt-<pid>`` with a :class:`RuntimeWarning`
  and a fresh store is initialised in its place (the cache and
  re-simulation can always rebuild it).
* A schema-version mismatch **refuses** to open (:class:`StoreSchemaError`)
  instead of misreading rows; :meth:`ResultStore.migrate` is the
  designated upgrade point.

``REPRO_STORE_PATH`` overrides the on-disk location (default:
``<result cache dir>/results.sqlite``).
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
import warnings
from typing import Dict, List, Optional

from repro.sim import faults
from repro.sim.plan import (
    ResultCache,
    _result_from_row,
    _result_to_row,
    default_cache_dir,
)
from repro.sim.runner import RunResult

#: Bump on any change to the table layout; an old store then refuses to
#: open (StoreSchemaError) instead of being misread, and ``migrate`` is
#: the place to teach the upgrade.
STORE_SCHEMA = 1

#: Columns persisted per result row, in insert order.
_COLUMNS = (
    "cache_key", "simulator_version", "builder_digest", "trace_digest",
    "core_digest", "num_instructions", "prewarm", "mode", "label",
    "workload", "category", "cycles", "ipc", "instructions",
    "result_json", "created_at",
)

_CREATE = (
    """
    CREATE TABLE IF NOT EXISTS meta (
        key TEXT PRIMARY KEY,
        value TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS results (
        cache_key TEXT PRIMARY KEY,
        simulator_version TEXT,
        builder_digest TEXT,
        trace_digest TEXT,
        core_digest TEXT,
        num_instructions INTEGER,
        prewarm INTEGER,
        mode TEXT,
        label TEXT,
        workload TEXT,
        category TEXT,
        cycles REAL,
        ipc REAL,
        instructions INTEGER,
        result_json TEXT NOT NULL,
        created_at REAL
    )
    """,
    """
    CREATE INDEX IF NOT EXISTS idx_results_digests
        ON results (builder_digest, trace_digest, simulator_version)
    """,
    "CREATE INDEX IF NOT EXISTS idx_results_workload ON results (workload, category)",
    "CREATE INDEX IF NOT EXISTS idx_results_label ON results (label)",
)


class StoreSchemaError(RuntimeError):
    """The store on disk uses a different schema version than this code."""


def default_store_path() -> str:
    """``REPRO_STORE_PATH``, else ``results.sqlite`` in the cache dir."""
    env = os.environ.get("REPRO_STORE_PATH")
    if env:
        return env
    return os.path.join(default_cache_dir(), "results.sqlite")


class ResultStore:
    """One SQLite row per completed job, keyed by the job's cache key.

    Thread-safe by construction: every thread gets its own connection
    (WAL journal, busy timeout), all writes are single-statement
    ``INSERT OR IGNORE`` transactions, and the schema is validated once
    under a lock at first open.
    """

    def __init__(self, path: Optional[str] = None, busy_timeout_s: float = 10.0):
        self.path = path if path is not None else default_store_path()
        self._busy_ms = int(busy_timeout_s * 1000)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._generation = 0
        self._verified_schema = False
        # Validate the schema eagerly: refuse early, not mid-sweep.  A file
        # that is unreadable at open (corrupt image, stale WAL from a dead
        # process) takes the quarantine path right away — only a *schema*
        # mismatch is a refusal.
        try:
            self._conn()
        except StoreSchemaError:
            raise
        except sqlite3.DatabaseError as exc:
            self._recover(exc)
            self._conn()

    # -- connection management --------------------------------------------
    def _open_connection(self) -> sqlite3.Connection:
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        conn = sqlite3.connect(self.path, timeout=self._busy_ms / 1000.0)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute(f"PRAGMA busy_timeout={self._busy_ms}")
        return conn

    def _init_schema(self, conn: sqlite3.Connection) -> None:
        with conn:
            for statement in _CREATE:
                conn.execute(statement)
            row = conn.execute(
                "SELECT value FROM meta WHERE key = 'schema'"
            ).fetchone()
            if row is None:
                conn.execute(
                    "INSERT INTO meta (key, value) VALUES ('schema', ?)",
                    (str(STORE_SCHEMA),),
                )
            elif row[0] != str(STORE_SCHEMA):
                raise StoreSchemaError(
                    f"result store {self.path} has schema {row[0]}, this build "
                    f"expects {STORE_SCHEMA}; run ResultStore.migrate() or point "
                    "REPRO_STORE_PATH at a fresh file"
                )

    def _conn(self) -> sqlite3.Connection:
        state = getattr(self._local, "state", None)
        if state is not None and state[1] == self._generation:
            return state[0]
        conn = self._open_connection()
        try:
            if not self._verified_schema:
                with self._lock:
                    if not self._verified_schema:
                        self._init_schema(conn)
                        self._verified_schema = True
            else:
                self._init_schema(conn)
        except sqlite3.DatabaseError:
            conn.close()
            raise
        self._local.state = (conn, self._generation)
        return conn

    def close(self) -> None:
        """Close the calling thread's connection (others close on reopen/GC)."""
        state = getattr(self._local, "state", None)
        if state is not None:
            try:
                state[0].close()
            except sqlite3.Error:
                pass
            self._local.state = None

    def _recover(self, exc: Exception) -> None:
        """Set the corrupt file aside and re-initialise a fresh store.

        Mirrors the cache's discipline: a store that cannot be read is
        never trusted and never fatal — everything in it is rebuildable
        from the cache or by re-simulation.
        """
        self.close()
        with self._lock:
            self._generation += 1  # stale connections everywhere reopen
            self._verified_schema = False
            quarantine = f"{self.path}.corrupt-{os.getpid()}"
            try:
                os.replace(self.path, quarantine)
            except OSError:
                quarantine = "<unlinkable>"
            for suffix in ("-wal", "-shm"):
                try:
                    os.remove(self.path + suffix)
                except OSError:
                    pass
        warnings.warn(
            f"result store: {self.path} is corrupt ({exc}); set aside as "
            f"{quarantine} and re-initialised empty",
            RuntimeWarning,
            stacklevel=3,
        )

    # -- core API ----------------------------------------------------------
    def put(self, key: str, result: RunResult,
            meta: Optional[Dict[str, object]] = None) -> bool:
        """Insert one result row; returns True when the row is new.

        First writer wins (``INSERT OR IGNORE``): concurrent identical
        writers — the service's sweep threads — are harmless.  A corrupt
        database is quarantined and the write retried once on the fresh
        file; persistent IO failure degrades to a no-op with a warning,
        exactly like the cache's write path.
        """
        meta = meta or {}
        row = (
            key,
            meta.get("simulator_version"),
            meta.get("builder_digest"),
            meta.get("trace_digest"),
            meta.get("core_digest"),
            meta.get("num_instructions", result.instructions),
            int(bool(meta.get("prewarm", True))),
            meta.get("mode"),
            result.system,
            result.workload,
            result.category,
            result.cycles,
            result.ipc,
            result.instructions,
            json.dumps(_result_to_row(result), sort_keys=True),
            time.time(),
        )
        sql = (
            f"INSERT OR IGNORE INTO results ({', '.join(_COLUMNS)}) "
            f"VALUES ({', '.join('?' * len(_COLUMNS))})"
        )
        for attempt in (0, 1):
            try:
                conn = self._conn()
                with conn:
                    cursor = conn.execute(sql, row)
                faults.on_write("store", self.path)
                return cursor.rowcount > 0
            except sqlite3.DatabaseError as exc:
                if attempt == 0:
                    self._recover(exc)
                    continue
                warnings.warn(
                    f"result store: write failed ({exc}); result not persisted",
                    RuntimeWarning,
                    stacklevel=2,
                )
                return False
            except OSError as exc:
                warnings.warn(
                    f"result store: write failed ({exc}); result not persisted",
                    RuntimeWarning,
                    stacklevel=2,
                )
                return False
        return False

    def get(self, key: str) -> Optional[RunResult]:
        """The stored :class:`RunResult` for ``key``, rebuilt byte-identically.

        Reconstruction parses the stored ``result_json`` through the same
        row codec the cache uses, so a store hit is indistinguishable
        from a fresh simulation.  Any malformed row degrades to a miss.
        """
        try:
            row = self._conn().execute(
                "SELECT result_json FROM results WHERE cache_key = ?", (key,)
            ).fetchone()
        except sqlite3.DatabaseError as exc:
            self._recover(exc)
            return None
        if row is None:
            return None
        try:
            return _result_from_row(json.loads(row[0]))
        except (ValueError, KeyError, TypeError) as exc:
            warnings.warn(
                f"result store: discarding malformed row for {key} ({exc})",
                RuntimeWarning,
                stacklevel=2,
            )
            try:
                conn = self._conn()
                with conn:
                    conn.execute("DELETE FROM results WHERE cache_key = ?", (key,))
            except sqlite3.DatabaseError:
                pass
            return None

    # -- queries -----------------------------------------------------------
    def query(
        self,
        label: Optional[str] = None,
        workload: Optional[str] = None,
        category: Optional[str] = None,
        version: Optional[str] = None,
        builder_digest: Optional[str] = None,
        trace_digest: Optional[str] = None,
        tag: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, object]]:
        """Filtered result rows (headline columns, no blobs), newest first.

        ``tag`` resolves through the scenario catalog
        (:func:`repro.scenarios.registry.scenarios`): rows whose workload
        is a catalog scenario carrying that tag.
        """
        clauses: List[str] = []
        params: List[object] = []
        for column, value in (
            ("label", label), ("workload", workload), ("category", category),
            ("simulator_version", version), ("builder_digest", builder_digest),
            ("trace_digest", trace_digest),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        if tag is not None:
            names = _scenario_names_for_tag(tag)
            if not names:
                return []
            clauses.append(
                f"workload IN ({', '.join('?' * len(names))})"
            )
            params.extend(names)
        sql = (
            "SELECT cache_key, label, workload, category, simulator_version, "
            "builder_digest, trace_digest, num_instructions, mode, cycles, "
            "ipc, instructions, created_at FROM results"
        )
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY created_at DESC, cache_key"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        try:
            cursor = self._conn().execute(sql, params)
            columns = [item[0] for item in cursor.description]
            return [dict(zip(columns, row)) for row in cursor.fetchall()]
        except sqlite3.DatabaseError as exc:
            self._recover(exc)
            return []

    def compare(self, version_a: str, version_b: str) -> List[Dict[str, object]]:
        """Cross-version comparison: IPC of matching jobs under two versions.

        Rows are matched on (builder digest, trace digest, instructions,
        mode) — the architecture and the input, everything except the
        simulator — so the deltas isolate what the simulator change did.
        """
        sql = """
            SELECT a.label, a.workload, a.category, a.ipc, b.ipc,
                   a.cycles, b.cycles
            FROM results a JOIN results b
              ON a.builder_digest = b.builder_digest
             AND a.trace_digest = b.trace_digest
             AND a.num_instructions = b.num_instructions
             AND a.mode = b.mode
            WHERE a.simulator_version = ? AND b.simulator_version = ?
            ORDER BY a.workload, a.label
        """
        try:
            rows = self._conn().execute(sql, (version_a, version_b)).fetchall()
        except sqlite3.DatabaseError as exc:
            self._recover(exc)
            return []
        return [
            {
                "label": label, "workload": workload, "category": category,
                "ipc_a": ipc_a, "ipc_b": ipc_b,
                "cycles_a": cycles_a, "cycles_b": cycles_b,
                "ipc_delta": (ipc_b - ipc_a) if None not in (ipc_a, ipc_b) else None,
            }
            for label, workload, category, ipc_a, ipc_b, cycles_a, cycles_b in rows
        ]

    def stats(self) -> Dict[str, object]:
        """Row counts and distinct-dimension counts (for healthz / CLI)."""
        try:
            conn = self._conn()
            (rows,) = conn.execute("SELECT COUNT(*) FROM results").fetchone()
            (versions,) = conn.execute(
                "SELECT COUNT(DISTINCT simulator_version) FROM results"
            ).fetchone()
            (labels,) = conn.execute(
                "SELECT COUNT(DISTINCT label) FROM results"
            ).fetchone()
            (workloads,) = conn.execute(
                "SELECT COUNT(DISTINCT workload) FROM results"
            ).fetchone()
        except sqlite3.DatabaseError as exc:
            self._recover(exc)
            rows = versions = labels = workloads = 0
        try:
            size = os.path.getsize(self.path)
        except OSError:
            size = 0
        return {
            "path": self.path,
            "schema": STORE_SCHEMA,
            "rows": rows,
            "versions": versions,
            "labels": labels,
            "workloads": workloads,
            "size_bytes": size,
        }

    def verify(self) -> Dict[str, object]:
        """``PRAGMA integrity_check`` plus a row-decode sample."""
        try:
            (integrity,) = self._conn().execute(
                "PRAGMA integrity_check"
            ).fetchone()
        except sqlite3.DatabaseError as exc:
            return {"ok": False, "integrity": str(exc)}
        return {"ok": integrity == "ok", "integrity": integrity}

    # -- ETL ---------------------------------------------------------------
    def ingest_cache(self, cache: ResultCache) -> Dict[str, int]:
        """ETL every readable :class:`ResultCache` entry into the store.

        Entries written since the store landed carry their digest
        provenance (``meta``); older entries ingest with null digests —
        still queryable by label/workload, still byte-identical on
        :meth:`get`.  Unreadable entries are skipped (the cache's own
        ``verify`` handles them).
        """
        from repro.sim.plan import RESULT_SCHEMA

        report = {"scanned": 0, "ingested": 0, "skipped": 0}
        root = os.path.join(cache.directory, "results")
        for dirpath, _, filenames in os.walk(root):
            for filename in filenames:
                if not filename.endswith(".json"):
                    continue
                report["scanned"] += 1
                path = os.path.join(dirpath, filename)
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        payload = json.load(handle)
                    if payload.get("schema") != RESULT_SCHEMA:
                        raise ValueError("schema mismatch")
                    result = _result_from_row(payload["result"])
                except (OSError, ValueError, KeyError, TypeError):
                    report["skipped"] += 1
                    continue
                key = filename[: -len(".json")]
                if self.put(key, result, meta=payload.get("meta")):
                    report["ingested"] += 1
        return report

    def ingest_journals(self, cache_directory: str) -> Dict[str, int]:
        """ETL the rows of abandoned sweep journals into the store.

        Journals checkpoint completed jobs of sweeps that never finished;
        their rows are exactly as trustworthy as cache entries (same
        codec, fsync'd), so abandoned work still becomes queryable
        instead of evaporating with the age-based journal prune.
        Corrupt lines — the tail of a crash — are skipped.
        """
        from repro.sim.plan import RESULT_SCHEMA

        report = {"journals": 0, "rows": 0, "ingested": 0, "skipped": 0}
        root = os.path.join(cache_directory, "journals")
        try:
            names = sorted(os.listdir(root))
        except OSError:
            return report
        for name in names:
            if not name.endswith(".jsonl"):
                continue
            report["journals"] += 1
            try:
                with open(os.path.join(root, name), "r", encoding="utf-8") as handle:
                    lines = handle.readlines()
            except OSError:
                continue
            for line in lines:
                line = line.strip()
                if not line:
                    continue
                report["rows"] += 1
                try:
                    entry = json.loads(line)
                    if entry.get("schema") != RESULT_SCHEMA:
                        raise ValueError("schema mismatch")
                    result = _result_from_row(entry["result"])
                    key = entry["key"]
                except (ValueError, KeyError, TypeError):
                    report["skipped"] += 1
                    continue
                if self.put(key, result, meta=entry.get("meta")):
                    report["ingested"] += 1
        return report

    # -- migrations --------------------------------------------------------
    def migrate(self) -> None:
        """Upgrade an old-schema store in place.

        Stub on purpose: schema 1 is the first schema, so there is
        nothing to migrate *from* yet.  When STORE_SCHEMA bumps, this is
        where the stepwise ``ALTER TABLE`` chain goes; until then an
        old-schema file refuses to open and the remedy is a fresh path.
        """
        raise NotImplementedError(
            f"no migrations exist yet (current schema: {STORE_SCHEMA}); "
            "point REPRO_STORE_PATH at a fresh file and re-ingest"
        )


def _scenario_names_for_tag(tag: str) -> List[str]:
    """Catalog scenario names carrying ``tag`` (empty on unknown tags)."""
    try:
        from repro.scenarios.registry import scenarios

        return [spec.name for spec in scenarios(tag=tag)]
    except Exception:
        return []
