"""Abstract interface between the core model and a memory hierarchy.

Every hierarchy the paper evaluates (conventional three-level, L-NUCA + L3,
D-NUCA, L-NUCA + D-NUCA) implements this interface, so the out-of-order core
and the experiment harness are completely agnostic of which hierarchy they
drive.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict

from repro.cache.request import AccessType, MemoryRequest
from repro.sim.stats import Stats


class MemorySystem(ABC):
    """A cycle-level memory hierarchy the core can issue requests into.

    The contract is:

    * the core calls :meth:`can_accept` and, if true, :meth:`issue` during
      its execute stage;
    * the system simulates forward when :meth:`tick` is called once per
      cycle (after the core's tick);
    * a request is finished when its ``complete_cycle`` is set and is in the
      past.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.stats = Stats(name)

    @abstractmethod
    def can_accept(self, cycle: int, access: AccessType) -> bool:
        """Return True if a new request of kind ``access`` can be issued now."""

    @abstractmethod
    def issue(self, addr: int, access: AccessType, cycle: int) -> MemoryRequest:
        """Issue a request and return its handle.

        Implementations may complete the request immediately (setting
        ``complete_cycle``) or leave it outstanding until a later
        :meth:`tick`.
        """

    @abstractmethod
    def tick(self, cycle: int) -> None:
        """Advance internal state by one cycle."""

    def busy(self) -> bool:
        """Return True while the hierarchy still has internal work pending."""
        return False

    def finalize(self, cycle: int) -> None:
        """Hook called once at the end of a run (drain buffers, flush stats)."""

    def activity(self) -> Dict[str, float]:
        """Return the activity counters used by the energy accounting model."""
        return self.stats.as_dict()

    def post_write(self, block_addr: int, cycle: int) -> None:
        """Accept a posted (non-blocking) write of ``block_addr``.

        Posted writes come from write buffers and copy-back evictions of the
        level in front of this system; they update state and count towards
        energy but must not contend with demand reads for ports.  The
        default implementation falls back to a regular store issue.
        """
        self.issue(block_addr, AccessType.STORE, cycle)

    def prewarm(self, addresses) -> None:
        """Functionally install ``addresses`` into the hierarchy's arrays.

        This replaces the paper's 200-million-instruction warm-up: contents
        are placed as if the address stream had already been executed once,
        without simulating any timing, so the measured run starts from a
        warm state.  Implementations must not touch timing state or
        statistics counters used by the experiments.
        """
        # Default: no warm-up support (a cold run is still correct).
        return None
