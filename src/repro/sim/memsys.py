"""Abstract interface between the core model and a memory hierarchy.

Every hierarchy the paper evaluates (conventional three-level, L-NUCA + L3,
D-NUCA, L-NUCA + D-NUCA) implements this interface, so the out-of-order core
and the experiment harness are completely agnostic of which hierarchy they
drive.

Cycle semantics
===============

The contract has a *dense* face and an *event-driven* face; both must
describe the same machine.

Dense face (what :meth:`tick` means):

* the core calls :meth:`can_accept` and, if true, :meth:`issue` during its
  execute stage;
* the system simulates forward when :meth:`tick` is called once per cycle
  (after the core's tick for that cycle);
* a request is finished when its ``complete_cycle`` is set and is in the
  past.

Event-driven face (when :meth:`tick` may be skipped):

* :meth:`next_event_cycle` returns the earliest cycle strictly after
  ``cycle`` at which a call to :meth:`tick` could change any state *or
  statistics counter* that the rest of the simulation can observe, or
  ``None`` when no tick wakeup is required;
* the scheduler is then allowed to skip every cycle in
  ``(cycle, next_event_cycle(cycle))`` exclusive — implementations must
  guarantee that a dense simulation calling :meth:`tick` on those skipped
  cycles would have been unobservable (no request completed, no
  back-pressure changed, no divergent counter);
* returning a cycle that is *earlier* than the next real event is always
  safe (the extra tick is a no-op, exactly as in a dense run); suppressing
  a wakeup is only legal under the **deferred-drain exemption** below —
  anything else later than a real event is a correctness bug, because the
  event-driven run must be bit-identical to the dense run, not merely
  statistically close;
* after every :meth:`issue` / :meth:`post_write` / :meth:`tick`, the caller
  must re-query :meth:`next_event_cycle`, because new work (search waves,
  pending fills, buffered writes) may have created earlier events.

Deferred-drain exemption (burst drains)
=======================================

Background work whose schedule is *fully determined* by already-committed
state — write-buffer drains pacing a fixed port interval, corner-eviction
pops, anything whose fire cycles can be computed arithmetically — may be
**deferred** instead of woken for: the hierarchy omits it from
:meth:`next_event_cycle` and instead burst-replays the missed span (for
example via :meth:`~repro.cache.writebuffer.WriteBuffer.drain_until`),
applying each action at the exact cycle a dense run would have used,
*before* anything can observe the hierarchy.  "Before anything can
observe" concretely means a catch-up runs at the top of
:meth:`can_accept`, :meth:`post_write`, :meth:`tick` and :meth:`finalize`;
:meth:`issue` deliberately does **not** catch up, because every
core-driven issue is preceded by a same-cycle :meth:`can_accept` while
backside issues from an L-NUCA carry a future stamp and must observe
pre-drain state, exactly matching dense intra-cycle call order (front-side
issues first, hierarchy drains after).  Under this exemption a hierarchy
with only deterministic drain work left reports ``None`` and the scheduler
skips it entirely; the results remain bit-identical because the replay
uses the dense fire cycles and the dense ordering (within a cycle:
buffer drain before corner pop, levels front to back).

The default :meth:`next_event_cycle` is maximally conservative: one cycle
ahead whenever :meth:`busy` reports pending work.  Subclasses that model
multi-cycle waits (memory channels, search waves, drain intervals) should
override it to expose the true next event — or defer the work outright
under the exemption — so the scheduler can leap over the idle span.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional

from repro.cache.request import AccessType, MemoryRequest
from repro.common.errors import SimulationError
from repro.sim.stats import Stats

#: Finalize refuses to chase pending work further than this many cycles
#: past the end of a run; a hierarchy that has not drained by then is
#: wedged, and truncating its statistics would silently corrupt results.
FINALIZE_GUARD_CYCLES = 1_000_000


class MemorySystem(ABC):
    """A cycle-level memory hierarchy the core can issue requests into."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.stats = Stats(name)

    @abstractmethod
    def can_accept(self, cycle: int, access: AccessType) -> bool:
        """Return True if a new request of kind ``access`` can be issued now."""

    @abstractmethod
    def issue(self, addr: int, access: AccessType, cycle: int) -> MemoryRequest:
        """Issue a request and return its handle.

        Implementations may complete the request immediately (setting
        ``complete_cycle``) or leave it outstanding until a later
        :meth:`tick`.
        """

    @abstractmethod
    def tick(self, cycle: int) -> None:
        """Advance internal state by one cycle.

        Under the event-driven kernel this is *not* called every cycle: the
        scheduler only guarantees calls at the cycles exposed through
        :meth:`next_event_cycle` (plus any extra cycles other components are
        active on, which must be no-ops for this hierarchy).
        """

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """Earliest cycle ``> cycle`` at which :meth:`tick` can do work.

        Returns ``None`` when the hierarchy is inert until the next request
        enters it.  See the module docstring for the exact guarantee.  The
        conservative default never skips while :meth:`busy`.
        """
        return cycle + 1 if self.busy() else None

    def span_window(self, cycle: int):
        """An analyzable steady-state window view, or ``None``.

        The core's memory-inclusive span engine
        (:meth:`repro.cpu.core.OoOCore._run_span_mem`) asks the hierarchy
        for a *window view* before fast-forwarding a span containing loads
        and stores.  A hierarchy may return a view object only when its
        front side is in a closed-form steady state: no in-flight waves,
        every port free at or before ``cycle``, and every deferred drain
        already replayed up to ``cycle`` (the §3 deferred-drain exemption
        keeps *future* drain work invisible inside the window, so it needs
        no representation in the view).  Outstanding misses need not close
        the window wholesale — a hierarchy whose in-flight entries are pure
        timing tokens (fills already applied at issue) may keep the window
        open and instead veto individual probes through ``mshr_clear``.
        Under those conditions a front-side **hit** behaves as a pure
        function of the entry cycle:

        * a load hit completes at ``start + load_latency``;
        * a store hit (or write-through store) completes at ``start + 1``
          and either pushes into a write buffer of ``store_capacity``
          entries or just dirties the resident block
          (``store_capacity is None``).

        The view must expose: ``entry_sig(cycle)`` (a cycle-relative tuple
        identifying the hierarchy's timing state at window entry, used in
        the schedule-memo key), ``load_latency``, ``ports``,
        ``store_capacity``, ``store_needs_residency`` (True when store hits
        also require the block resident in the front array — copy-back /
        L-NUCA fronts), ``front_name``, ``block_addr(addr)``,
        ``resident(addr)`` (a pure residency probe that must not touch
        replacement state or statistics), ``mshr_clear(addrs)`` (True when
        no probed address maps to a live in-flight entry — a probe that
        would take the dense secondary-merge path must truncate the window
        instead), and ``apply_span_events(base, events)`` replaying the
        validated ``(rel_cycle, is_store, addr)`` events through the real
        issue primitives so statistics, LRU state and port reservations are
        bit-identical to dense issue by construction.

        The default (and any hierarchy without a steady-state fast path)
        returns ``None``: the engine then falls back to the pure-ALU span
        engine and per-cycle ticking, which is always correct.
        """
        return None

    def busy(self) -> bool:
        """Return True while the hierarchy still has internal work pending."""
        return False

    def finalize(self, cycle: int) -> int:
        """Drain pending work at the end of a run, skipping idle cycles.

        Ticks only at the cycles :meth:`next_event_cycle` exposes, so
        finalization costs one iteration per pending event rather than one
        per idle cycle.  Returns the cycle the drain finished at so
        subclasses can chain their own cleanup (e.g. a backside).  A
        hierarchy that is not :meth:`busy` returns immediately.

        Raises:
            SimulationError: when the hierarchy is still :meth:`busy` after
                :data:`FINALIZE_GUARD_CYCLES` cycles.  A wedged hierarchy
                must abort loudly — returning would hand the experiment
                truncated-but-plausible statistics.
        """
        guard = cycle
        limit = cycle + FINALIZE_GUARD_CYCLES
        while self.busy() and guard < limit:
            self.tick(guard)
            nxt = self.next_event_cycle(guard)
            guard = nxt if nxt is not None and nxt > guard else guard + 1
        if self.busy():
            raise self.wedged_error(cycle)
        return guard

    def wedged_error(self, cycle: int) -> SimulationError:
        """The wedged-finalize error, shared by every finalize override.

        Building the error in one place keeps the message (and any future
        fields) identical no matter which hierarchy's finalize detected the
        wedge; it only runs on the error path.
        """
        return SimulationError(
            f"memory system {self.name!r} failed to drain within "
            f"{FINALIZE_GUARD_CYCLES} cycles of finalize "
            f"(started at cycle {cycle}): {self.pending_work()}"
        )

    def pending_work(self) -> str:
        """One-line description of why :meth:`busy` is still True.

        Used by :meth:`finalize` to name the wedged work in its error;
        subclasses override it to report their specific queues.
        """
        return "unspecified pending work (busy() is True)"

    def activity(self) -> Dict[str, float]:
        """Return the activity counters used by the energy accounting model."""
        return self.stats.as_dict()

    def post_write(self, block_addr: int, cycle: int) -> None:
        """Accept a posted (non-blocking) write of ``block_addr``.

        Posted writes come from write buffers and copy-back evictions of the
        level in front of this system; they update state and count towards
        energy but must not contend with demand reads for ports.  The
        default implementation falls back to a regular store issue.
        """
        self.issue(block_addr, AccessType.STORE, cycle)

    def prewarm(self, addresses) -> None:
        """Functionally install ``addresses`` into the hierarchy's arrays.

        This replaces the paper's 200-million-instruction warm-up: contents
        are placed as if the address stream had already been executed once,
        without simulating any timing, so the measured run starts from a
        warm state.  Implementations must not touch timing state or
        statistics counters used by the experiments.
        """
        # Default: no warm-up support (a cold run is still correct).
        return None
