"""Command-line interface for the reproduction.

Examples::

    python -m repro.cli table2
    python -m repro.cli --instructions 15000 --per-category 4 fig4
    python -m repro.cli --workers 4 fig5
    python -m repro.cli table3
    python -m repro.cli ablations --instructions 4000
    python -m repro.cli report --output results/
    python -m repro.cli scenarios list
    python -m repro.cli scenarios generate --out traces/ --tag new
    python -m repro.cli --workers 4 scenarios run --traces-dir traces/
"""

from __future__ import annotations

import argparse
import os
from typing import List, Optional, Sequence

from repro.experiments import (
    ablations,
    fig4_conventional,
    fig5_dnuca,
    fig6_scenarios,
    table2_area,
    table3_hits,
)
from repro.experiments import report as report_module
from repro.experiments.common import DEFAULT_INSTRUCTIONS, DEFAULT_PER_CATEGORY


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of the Light NUCA paper (DATE 2009).",
    )
    parser.add_argument(
        "--instructions",
        type=int,
        default=DEFAULT_INSTRUCTIONS,
        help="instructions simulated per workload",
    )
    parser.add_argument(
        "--per-category",
        type=int,
        default=DEFAULT_PER_CATEGORY,
        help="workloads per category (integer / floating point)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan sweeps out over N persistent pool workers "
        "(result-identical to sequential; needs a fork-capable OS)",
    )
    parser.add_argument(
        "--pool-size",
        type=int,
        default=None,
        metavar="N",
        help="cap on idle workers kept in the persistent pool between "
        "sweeps (default: REPRO_POOL_SIZE or 8); excess workers are "
        "discarded instead of pooled",
    )
    parser.add_argument(
        "--pool-max-jobs",
        type=int,
        default=None,
        metavar="N",
        help="recycle a pool worker after it has run this many jobs "
        "(default: REPRO_POOL_MAX_JOBS, unlimited when unset); results "
        "are bit-identical either way",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-addressed result cache (default location "
        "~/.cache/repro-lnuca, override with REPRO_CACHE_DIR); cached and "
        "uncached runs are bit-identical",
    )
    parser.add_argument(
        "--cache-limit-mb",
        type=float,
        default=None,
        metavar="MB",
        help="size-cap the result cache: oldest-access entries are pruned "
        "once it exceeds this many megabytes (default: REPRO_CACHE_LIMIT_MB, "
        "unlimited when unset); surviving entries keep hitting bit-identically",
    )
    parser.add_argument(
        "--store",
        nargs="?",
        const="",
        default=None,
        metavar="PATH",
        help="also consult/feed the SQLite result store: cache misses are "
        "answered from it and every landed result is inserted "
        "(default path <cache dir>/results.sqlite or REPRO_STORE_PATH; "
        "pass a PATH to override).  'serve' and 'store' subcommands "
        "enable it automatically",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print a single updating progress line per sweep "
        "(jobs done/total, cache/store hits, retries, quarantines)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="abort the sweep with an error when a job is quarantined "
        "(default: quarantined jobs are excluded with a warning and the "
        "sweep completes)",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock timeout per worker job (default: derived from the "
        "instruction budget); a timed-out worker is killed and the job "
        "retried on a fresh one",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="retries per job before it is quarantined (default: 2)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("table2", help="Table II: conventional and L-NUCA areas")
    sub.add_parser("table3", help="Table III: hits per level and transport latency ratio")
    sub.add_parser("fig4", help="Figure 4: IPC and energy vs the conventional hierarchy")
    sub.add_parser("fig5", help="Figure 5: IPC and energy vs the D-NUCA hierarchy")
    sub.add_parser("ablations", help="Design-decision ablations")
    report = sub.add_parser("report", help="Run everything and write markdown + CSV files")
    report.add_argument("--output", default="results", help="output directory")
    report.add_argument(
        "--with-ablations", action="store_true", help="include the ablation sweeps"
    )

    scenarios = sub.add_parser(
        "scenarios", help="Scenario engine: list, generate, and run workload scenarios"
    )
    scen_sub = scenarios.add_subparsers(dest="scenarios_command", required=True)

    scen_list = scen_sub.add_parser(
        "list", help="List generator families and catalog scenarios"
    )
    scen_list.add_argument("--tag", default=None, help="only scenarios with this tag")

    scen_gen = scen_sub.add_parser(
        "generate", help="Generate scenario traces into binary capture files"
    )
    scen_gen.add_argument("--out", required=True, help="output directory for .lntr files")
    scen_gen.add_argument("--names", nargs="+", default=None, help="scenario names")
    scen_gen.add_argument("--tag", default=None, help="select scenarios by tag")
    scen_gen.add_argument(
        "--backend",
        choices=("auto", "vectorized", "scalar"),
        default="auto",
        help="synthesis backend (bit-identical either way)",
    )

    scen_run = scen_sub.add_parser(
        "run", help="Sweep scenarios across the four hierarchy types"
    )
    scen_run.add_argument("--names", nargs="+", default=None, help="scenario names")
    scen_run.add_argument("--tag", default=None, help="select scenarios by tag")
    scen_run.add_argument(
        "--traces-dir",
        default=None,
        help="binary trace cache: replay existing .lntr files, capture missing ones",
    )
    scen_run.add_argument("--csv", default=None, help="also write the IPC table as CSV")

    cache_cmd = sub.add_parser(
        "cache", help="Inspect and maintain the on-disk result cache"
    )
    cache_sub = cache_cmd.add_subparsers(dest="cache_command", required=True)
    cache_verify = cache_sub.add_parser(
        "verify",
        help="scan the result cache and the snapshot blob store for "
        "corrupt or truncated entries (deleting them, so they "
        "re-simulate / re-prewarm instead of erroring)",
    )
    cache_verify.add_argument(
        "--keep",
        action="store_true",
        help="report corrupt entries without deleting them",
    )

    store_cmd = sub.add_parser(
        "store", help="Query and maintain the SQLite result store"
    )
    store_sub = store_cmd.add_subparsers(dest="store_command", required=True)
    store_sub.add_parser(
        "ingest",
        help="ETL existing result-cache entries and sweep journals into the store",
    )
    store_query = store_sub.add_parser(
        "query", help="filter stored results (newest first)"
    )
    store_query.add_argument("--label", default=None, help="hierarchy label")
    store_query.add_argument("--workload", default=None, help="workload/scenario name")
    store_query.add_argument("--category", default=None, help="int / fp / scenario category")
    store_query.add_argument("--version", default=None, help="simulator version")
    store_query.add_argument("--tag", default=None, help="scenario catalog tag")
    store_query.add_argument("--limit", type=int, default=None, help="max rows")
    store_query.add_argument(
        "--json", action="store_true", help="print rows as JSON lines"
    )
    store_sub.add_parser("stats", help="row counts and store file health")

    serve = sub.add_parser(
        "serve",
        help="Run the HTTP/JSON sweep service (POST /sweeps, GET /results, "
        "GET /healthz); repeated identical requests are answered from the "
        "store/cache without simulating",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8080, help="bind port (0 picks an ephemeral one)"
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request to stderr"
    )
    return parser


def _result_cache(args):
    """The CLI's result cache (``None`` with ``--no-cache``).

    Simulation results are memoized content-addressed on disk (see
    :mod:`repro.sim.plan`); a ``-dirty`` simulator tree bypasses the cache
    automatically, so this default is always safe.
    """
    if args.no_cache:
        if args.cache_limit_mb is not None:
            raise SystemExit("--cache-limit-mb has no effect with --no-cache")
        return None
    from repro.sim.plan import ResultCache

    return ResultCache.default(limit_mb=args.cache_limit_mb)


def _result_store(args, default_on: bool = False):
    """The CLI's SQLite result store (``None`` unless requested).

    ``--store`` (optionally with a path) enables it for any command;
    the ``serve`` and ``store`` subcommands enable it by default.
    """
    if args.store is None and not default_on:
        return None
    from repro.sim.store import ResultStore

    return ResultStore(args.store or None)


def _progress_printer():
    """A ``on_progress`` callback rendering one updating line per sweep."""
    import sys

    def show(done: int, total: int, stats) -> None:
        line = (
            f"\r[{done}/{total}] simulated={stats.simulated} "
            f"cached={stats.cached} store_hits={stats.store_hits} "
            f"retries={stats.retries} quarantined={stats.quarantined}"
        )
        # The sweep's final callback (done covers every non-quarantined
        # job) terminates the line.
        end = "\n" if done + stats.quarantined >= total else ""
        sys.stderr.write(line + end)
        sys.stderr.flush()

    return show


def _supervision(args):
    """A :class:`SupervisionPolicy` from the CLI flags (``None`` = defaults)."""
    if not args.strict and args.job_timeout is None and args.max_retries is None:
        return None
    from repro.sim.plan import SupervisionPolicy

    policy = SupervisionPolicy(strict=args.strict)
    if args.job_timeout is not None:
        policy.job_timeout = args.job_timeout
    if args.max_retries is not None:
        policy.max_retries = args.max_retries
    return policy


def _cache_verify(cache, keep: bool) -> None:
    import os

    from repro.sim.plan import SnapshotStore

    report = cache.verify(delete=not keep)
    verb = "found" if keep else "deleted"
    print(
        f"cache {cache.directory}: {report['checked']} entries checked, "
        f"{report['corrupt']} corrupt ({verb}), "
        f"{report['stale_tmp']} stale tmp files, "
        f"{report['journals']} checkpoint journals "
        f"({report['stale_journals']} abandoned, {verb})"
    )
    snapshots = SnapshotStore(os.path.join(cache.directory, "snapshots"))
    blobs = snapshots.verify(delete=not keep)
    print(
        f"snapshot store {snapshots.directory}: {blobs['checked']} blobs checked, "
        f"{blobs['corrupt']} corrupt ({verb}), "
        f"{blobs['stale_tmp']} stale tmp files"
    )
    from repro.sim.schedstore import ScheduleStore

    schedules = ScheduleStore(os.path.join(cache.directory, "schedules"))
    sched = schedules.verify(delete=not keep)
    print(
        f"schedule store {schedules.directory}: {sched['checked']} blobs checked, "
        f"{sched['corrupt']} corrupt ({verb}), "
        f"{sched['stale_tmp']} stale tmp files"
    )


def _select_scenarios(names: Optional[Sequence[str]], tag: Optional[str]) -> List:
    from repro.common.errors import ConfigurationError
    from repro.scenarios import default_sweep, scenario, scenarios

    if names and tag:
        raise ConfigurationError("--names and --tag are mutually exclusive")
    if names:
        return [scenario(name) for name in names]
    if tag:
        selected = scenarios(tag)
        if not selected:
            raise ConfigurationError(f"no scenarios carry the tag {tag!r}")
        return selected
    return default_sweep()


def _scenarios_list(tag: Optional[str]) -> None:
    from repro.scenarios import families, scenarios

    print("generator families:")
    for fam in families():
        print(f"  {fam.name:<12} {fam.doc}")
    print()
    print("scenarios:")
    for spec in scenarios(tag):
        tags = ",".join(spec.tags)
        print(f"  {spec.name:<18} {spec.family:<12} [{spec.category}] {spec.description}"
              f"{'  (' + tags + ')' if tags else ''}")


def _trace_path(directory: str, name: str, num_instructions: int) -> str:
    return os.path.join(directory, f"{name}-{num_instructions}.lntr")


def _capture_meta(spec) -> dict:
    """Provenance recorded in a captured trace's header.

    Delegates to the plan layer's canonical scenario signature (the same
    identity that keys the trace pool), so ``scenarios generate`` captures
    and pool entries are interchangeable.
    """
    from repro.sim.plan import scenario_signature

    return scenario_signature(spec)


def _scenarios_generate(
    out: str,
    names: Optional[Sequence[str]],
    tag: Optional[str],
    num_instructions: int,
    backend: str,
) -> None:
    from repro.scenarios import build_trace, save_trace

    vectorized = {"auto": None, "vectorized": True, "scalar": False}[backend]
    os.makedirs(out, exist_ok=True)
    for spec in _select_scenarios(names, tag):
        # Every family accepts the override; the legacy spec2006 generator
        # is per-instruction by definition and simply ignores it.
        if vectorized is not None:
            spec = spec.with_params(vectorized=vectorized)
        trace = build_trace(spec, num_instructions)
        path = _trace_path(out, spec.name, num_instructions)
        size = save_trace(trace, path, extra_meta=_capture_meta(spec))
        print(f"  {path}: {len(trace)} instructions, {size} bytes")


def _scenarios_run(
    names: Optional[Sequence[str]],
    tag: Optional[str],
    num_instructions: int,
    workers: Optional[int],
    traces_dir: Optional[str],
    csv_path: Optional[str],
    cache=None,
    supervision=None,
) -> None:
    from repro.sim.plan import TracePool

    specs = _select_scenarios(names, tag)
    # With --traces-dir the sweep replays from (and captures into) a
    # user-visible file-backed pool; stale or unreadable captures are
    # reported and regenerated by the pool itself.
    pool = TracePool(traces_dir, on_event=lambda msg: print(f"  {msg}")) if traces_dir else None
    report = fig6_scenarios.run(
        num_instructions=num_instructions,
        specs=specs,
        workers=workers,
        cache=cache,
        supervision=supervision,
        pool=pool,
    )
    print("Scenario sweep — IPC across the four hierarchy types")
    for line in fig6_scenarios.format_rows(report):
        print("  " + line)
    if csv_path:
        fig6_scenarios.write_csv(report, csv_path)
        print(f"csv written to {csv_path}")


def _store_ingest(store, cache) -> None:
    cache_report = store.ingest_cache(cache)
    journal_report = store.ingest_journals(cache.directory)
    print(
        f"store {store.path}: ingested {cache_report['ingested']} of "
        f"{cache_report['scanned']} cache entries "
        f"({cache_report['skipped']} unreadable), "
        f"{journal_report['ingested']} rows from {journal_report['journals']} "
        f"journal(s) ({journal_report['skipped']} corrupt lines)"
    )


def _store_query(store, args) -> None:
    import json as json_module

    rows = store.query(
        label=args.label,
        workload=args.workload,
        category=args.category,
        version=args.version,
        tag=args.tag,
        limit=args.limit,
    )
    if args.json:
        for row in rows:
            print(json_module.dumps(row, sort_keys=True))
        return
    if not rows:
        print("no matching rows")
        return
    print(f"{'label':<14} {'workload':<20} {'category':<10} {'ipc':>8} {'cycles':>12}")
    for row in rows:
        print(
            f"{row['label']:<14} {row['workload']:<20} {row['category']:<10} "
            f"{row['ipc']:>8.4f} {row['cycles']:>12.0f}"
        )


def _store_stats(store) -> None:
    stats = store.stats()
    print(
        f"store {stats['path']}: schema {stats['schema']}, {stats['rows']} rows, "
        f"{stats['labels']} labels, {stats['workloads']} workloads, "
        f"{stats['versions']} simulator versions, {stats['size_bytes']} bytes"
    )
    health = store.verify()
    print(f"integrity: {health['integrity']}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    from repro.sim.plan import configure_worker_pool, set_default_progress, use_store

    if args.pool_size is not None or args.pool_max_jobs is not None:
        configure_worker_pool(size=args.pool_size, max_jobs=args.pool_max_jobs)
    cache = _result_cache(args)
    supervision = _supervision(args)
    store = _result_store(args, default_on=args.command in ("serve", "store"))
    if args.progress:
        set_default_progress(_progress_printer())
    try:
        with use_store(store):
            return _dispatch(args, cache, store, supervision)
    finally:
        if args.progress:
            set_default_progress(None)
        if store is not None:
            store.close()


def _dispatch(args, cache, store, supervision) -> int:
    if args.command == "table2":
        table2_area.main()
    elif args.command == "table3":
        table3_hits.main(
            num_instructions=args.instructions,
            per_category=args.per_category,
            workers=args.workers,
            cache=cache,
            supervision=supervision,
        )
    elif args.command == "fig4":
        fig4_conventional.main(
            num_instructions=args.instructions,
            per_category=args.per_category,
            workers=args.workers,
            cache=cache,
            supervision=supervision,
        )
    elif args.command == "fig5":
        fig5_dnuca.main(
            num_instructions=args.instructions,
            per_category=args.per_category,
            workers=args.workers,
            cache=cache,
            supervision=supervision,
        )
    elif args.command == "ablations":
        ablations.main(
            num_instructions=args.instructions, workers=args.workers, cache=cache,
            supervision=supervision,
        )
    elif args.command == "report":
        from repro.sim.plan import collect_stats

        with collect_stats() as stats:
            path = report_module.write_report(
                args.output,
                num_instructions=args.instructions,
                per_category=args.per_category,
                include_ablations=args.with_ablations,
                workers=args.workers,
                cache=cache,
                supervision=supervision,
                store=store,
            )
        print(f"report written to {path}")
        # The two-pass CI smoke asserts `simulated=0` on the warm pass.
        print(f"plan stats: {stats.describe()}")
    elif args.command == "cache":
        if cache is None:
            raise SystemExit("cache verify needs the cache enabled (drop --no-cache)")
        if args.cache_command == "verify":
            _cache_verify(cache, keep=args.keep)
    elif args.command == "store":
        if args.store_command == "ingest":
            if cache is None:
                raise SystemExit("store ingest reads the cache (drop --no-cache)")
            _store_ingest(store, cache)
        elif args.store_command == "query":
            _store_query(store, args)
        elif args.store_command == "stats":
            _store_stats(store)
    elif args.command == "serve":
        from repro.service import SweepManager, serve

        manager = SweepManager(
            cache=cache, store=store, workers=args.workers, supervision=supervision,
        )
        serve(args.host, args.port, manager, verbose=args.verbose)
    elif args.command == "scenarios":
        from repro.common.errors import ConfigurationError

        try:
            if args.scenarios_command == "list":
                _scenarios_list(args.tag)
            elif args.scenarios_command == "generate":
                _scenarios_generate(
                    args.out, args.names, args.tag, args.instructions, args.backend
                )
            elif args.scenarios_command == "run":
                _scenarios_run(
                    args.names,
                    args.tag,
                    args.instructions,
                    args.workers,
                    args.traces_dir,
                    args.csv,
                    cache=cache,
                    supervision=supervision,
                )
        except ConfigurationError as exc:
            # User input (names, tags, params) reaches the registry from
            # here; fail with the message, not a traceback.
            print(f"error: {exc}")
            return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised through main()
    raise SystemExit(main())
