"""Command-line interface for the reproduction.

Examples::

    python -m repro.cli table2
    python -m repro.cli fig4 --instructions 15000 --per-category 4
    python -m repro.cli fig5
    python -m repro.cli table3
    python -m repro.cli ablations --instructions 4000
    python -m repro.cli report --output results/
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro.experiments import ablations, fig4_conventional, fig5_dnuca, table2_area, table3_hits
from repro.experiments import report as report_module
from repro.experiments.common import DEFAULT_INSTRUCTIONS, DEFAULT_PER_CATEGORY


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of the Light NUCA paper (DATE 2009).",
    )
    parser.add_argument(
        "--instructions",
        type=int,
        default=DEFAULT_INSTRUCTIONS,
        help="instructions simulated per workload",
    )
    parser.add_argument(
        "--per-category",
        type=int,
        default=DEFAULT_PER_CATEGORY,
        help="workloads per category (integer / floating point)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("table2", help="Table II: conventional and L-NUCA areas")
    sub.add_parser("table3", help="Table III: hits per level and transport latency ratio")
    sub.add_parser("fig4", help="Figure 4: IPC and energy vs the conventional hierarchy")
    sub.add_parser("fig5", help="Figure 5: IPC and energy vs the D-NUCA hierarchy")
    sub.add_parser("ablations", help="Design-decision ablations")
    report = sub.add_parser("report", help="Run everything and write markdown + CSV files")
    report.add_argument("--output", default="results", help="output directory")
    report.add_argument(
        "--with-ablations", action="store_true", help="include the ablation sweeps"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "table2":
        table2_area.main()
    elif args.command == "table3":
        table3_hits.main(num_instructions=args.instructions, per_category=args.per_category)
    elif args.command == "fig4":
        fig4_conventional.main(num_instructions=args.instructions, per_category=args.per_category)
    elif args.command == "fig5":
        fig5_dnuca.main(num_instructions=args.instructions, per_category=args.per_category)
    elif args.command == "ablations":
        ablations.main(num_instructions=args.instructions)
    elif args.command == "report":
        path = report_module.write_report(
            args.output,
            num_instructions=args.instructions,
            per_category=args.per_category,
            include_ablations=args.with_ablations,
        )
        print(f"report written to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised through main()
    raise SystemExit(main())
